open Gf2
open Smtlite

type cex_mode = Data_word | Whole_candidate
type verifier_mode = Combinatorial | Sat

let cex_mode_name = function
  | Data_word -> "data-word"
  | Whole_candidate -> "whole-candidate"

let verifier_name = function Combinatorial -> "comb" | Sat -> "sat"

type problem = {
  data_len : int;
  check_len : int;
  min_distance : int;
  extra : (entry:(row:int -> col:int -> Smtlite.Expr.t) -> Smtlite.Expr.t) list;
}

type cex = Cex_data of Bitvec.t | Cex_candidate of Hamming.Code.t

(* Symbolic coefficient-matrix bits for one candidate generator.  Fresh
   variables per call so repeated syntheses don't interfere. *)
let make_matrix_vars ~data_len ~check_len =
  Array.init data_len (fun _ -> Array.of_list (Fresh.make_n check_len))

let candidate_of_model ctx vars ~data_len ~check_len =
  let p =
    Matrix.init ~rows:data_len ~cols:check_len (fun i j -> Ctx.model_bool ctx vars.(i).(j))
  in
  Hamming.Code.make ~p

(* The counterexample constraint: for the concrete data word [d], the
   symbolic codeword must have weight >= md.  The data part contributes
   [popcount d] ones; check bit j is the parity of column j restricted to
   the set bits of d. *)
let data_word_constraint ~encoding vars ~check_len ~min_distance d =
  let data_weight = Bitvec.popcount d in
  let deficit = min_distance - data_weight in
  if deficit <= 0 then Expr.true_
  else begin
    let checks =
      List.init check_len (fun j ->
          let selected = ref [] in
          Bitvec.iter_set (fun i -> selected := vars.(i).(j) :: !selected) d;
          Expr.xor_l !selected)
    in
    Card.at_least encoding checks deficit
  end

(* The paper's makeCex: forbid exactly this candidate matrix. *)
let block_candidate_constraint vars code =
  let p = Hamming.Code.coefficient_matrix code in
  let diffs = ref [] in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          let bit = Matrix.get p i j in
          diffs := (if bit then Expr.not_ v else v) :: !diffs)
        row)
    vars;
  Expr.or_ !diffs

(* ---------- resumable session: one CEGIS iteration at a time ---------- *)

type session = {
  problem : problem;
  cex_mode : cex_mode;
  verifier : verifier_mode;
  encoding : Card.encoding;
  seed : int option;
  interrupt : (unit -> bool) option;
  syn : Ctx.t;
  vars : Expr.t array array;
  start : float;
  mutable iterations : int;
  mutable verifier_calls : int;
  ver_conflicts : int ref;
  (* best refuted candidate so far: the generator whose refuting witness
     had the largest codeword weight (an upper bound on the candidate's
     minimum distance, hence "closest to the target") — the anytime result
     returned as [Partial] when a budget expires *)
  mutable best : (Hamming.Code.t * int) option;
}

type step_result =
  | Done of Hamming.Code.t
  | Progress of cex
  | Exhausted

(* Absorb a counterexample — the session's own, one imported from another
   portfolio worker, or one replayed from a checkpoint.  Raw witnesses are
   re-encoded with this session's own cardinality encoding, so sharing
   across differently-configured workers stays sound: both constraint forms
   are implied for any correct code. *)
let learn_into s cex =
  match cex with
  | Cex_data d ->
      Ctx.assert_ s.syn
        (data_word_constraint ~encoding:s.encoding s.vars
           ~check_len:s.problem.check_len ~min_distance:s.problem.min_distance
           d)
  | Cex_candidate code ->
      Ctx.assert_ s.syn (block_candidate_constraint s.vars code)

let create_session ?(cex_mode = Data_word) ?(verifier = Combinatorial)
    ?(encoding = Card.Sequential) ?seed ?interrupt ?vars ?(initial = [])
    problem =
  Fault.init_from_env ();
  let { data_len; check_len; min_distance = _; extra } = problem in
  if data_len < 1 || check_len < 1 then
    invalid_arg "Cegis.create_session: need at least one data and one check bit";
  let syn = Ctx.create () in
  (match seed with Some s -> Ctx.set_seed syn s | None -> ());
  (match interrupt with Some _ -> Ctx.set_interrupt syn interrupt | None -> ());
  let vars =
    match vars with
    | Some v ->
        if
          Array.length v <> data_len
          || (data_len > 0 && Array.length v.(0) <> check_len)
        then invalid_arg "Cegis.create_session: vars dimensions mismatch";
        v
    | None -> make_matrix_vars ~data_len ~check_len
  in
  let entry ~row ~col = vars.(row).(col) in
  List.iter (fun build -> Ctx.assert_ syn (build ~entry)) extra;
  if Telemetry.enabled () then
    Telemetry.point "cegis.session"
      ~fields:
        [
          ("data_len", Telemetry.int data_len);
          ("check_len", Telemetry.int check_len);
          ("min_distance", Telemetry.int problem.min_distance);
          ("encoding", Telemetry.str (Card.encoding_name encoding));
          ("cex_mode", Telemetry.str (cex_mode_name cex_mode));
          ("verifier", Telemetry.str (verifier_name verifier));
          ("seed", Telemetry.int (Option.value seed ~default:(-1)));
          ("extra_constraints", Telemetry.int (List.length extra));
        ];
  let s =
    {
      problem;
      cex_mode;
      verifier;
      encoding;
      seed;
      interrupt;
      syn;
      vars;
      start = Unix.gettimeofday ();
      iterations = 0;
      verifier_calls = 0;
      ver_conflicts = ref 0;
      best = None;
    }
  in
  (* replay counterexamples recovered from a checkpoint (or carried over
     from a previous incarnation) before the first candidate is drawn *)
  List.iter (learn_into s) initial;
  s

let matrix_vars s = s.vars

let session_stats s : Report.Stats.t =
  {
    iterations = s.iterations;
    verifier_calls = s.verifier_calls;
    elapsed = Unix.gettimeofday () -. s.start;
    syn_conflicts = (Ctx.stats s.syn).Sat.Solver.conflicts;
    ver_conflicts = !(s.ver_conflicts);
    worker_crashes = 0;
    worker_restarts = 0;
    learnt_hist = Ctx.learnt_histogram s.syn;
  }

let session_best s = s.best

let learn = learn_into

let verify ?deadline s code =
  s.verifier_calls <- s.verifier_calls + 1;
  match s.verifier with
  | Combinatorial ->
      Hamming.Distance.counterexample ?interrupt:s.interrupt code
        s.problem.min_distance
  | Sat ->
      Hamming.Distance.sat_counterexample ?deadline ?interrupt:s.interrupt
        ?seed:s.seed ~conflicts:s.ver_conflicts code s.problem.min_distance

(* One CEGIS iteration, instrumented as a [cegis.iteration] span holding a
   synthesizer [ctx.check] span, a [cegis.candidate] event and a
   [cegis.verify] span with the verdict. *)
let step_body ?deadline s =
  match Ctx.check ?deadline s.syn with
  | Ctx.Unsat -> Exhausted
  | Ctx.Sat -> (
      let code =
        candidate_of_model s.syn s.vars ~data_len:s.problem.data_len
          ~check_len:s.problem.check_len
      in
      if Telemetry.enabled () then
        Telemetry.point "cegis.candidate"
          ~fields:[ ("set_bits", Telemetry.int (Hamming.Code.set_bits code)) ];
      let vsp =
        Telemetry.begin_span "cegis.verify"
          ~fields:[ ("verifier", Telemetry.str (verifier_name s.verifier)) ]
      in
      match verify ?deadline s code with
      | None ->
          Telemetry.end_span vsp ~fields:[ ("verdict", Telemetry.str "ok") ];
          Done code
      | Some d ->
          (* the witness codeword weight is an upper bound on this
             candidate's minimum distance; keep the candidate that came
             closest to the target as the anytime result *)
          let cw = Bitvec.popcount (Hamming.Code.encode code d) in
          Telemetry.end_span vsp
            ~fields:
              [
                ("verdict", Telemetry.str "cex");
                ("cex_weight", Telemetry.int (Bitvec.popcount d));
                ("cand_weight", Telemetry.int cw);
              ];
          (match s.best with
          | Some (_, b) when b >= cw -> ()
          | _ -> s.best <- Some (code, cw));
          let cex =
            match s.cex_mode with
            | Data_word -> Cex_data d
            | Whole_candidate -> Cex_candidate code
          in
          learn s cex;
          Progress cex
      | exception e ->
          Telemetry.end_span vsp ~fields:[ ("verdict", Telemetry.str "aborted") ];
          raise e)

let m_iterations = Telemetry.Metrics.counter "cegis.iterations"

let step ?deadline s =
  s.iterations <- s.iterations + 1;
  Telemetry.Metrics.incr m_iterations 1;
  if not (Telemetry.enabled ()) then step_body ?deadline s
  else
    Telemetry.span "cegis.iteration"
      ~fields:[ ("iter", Telemetry.int s.iterations) ]
      (fun () -> step_body ?deadline s)

let synthesize ?(timeout = 120.0) ?(cex_mode = Data_word)
    ?(verifier = Combinatorial) ?(encoding = Card.Sequential) ?seed ?interrupt
    ?initial ?on_progress problem =
  let s =
    create_session ~cex_mode ~verifier ~encoding ?seed ?interrupt ?initial
      problem
  in
  let deadline = s.start +. timeout in
  (* the anytime outcome when a budget or interrupt cuts the run short *)
  let out_of_budget () =
    match s.best with
    | Some (code, _) -> Report.Partial (code, session_stats s)
    | None -> Report.Timed_out (session_stats s)
  in
  (* [Interrupted] with no genuinely-firing interrupt installed is spurious
     (fault injection, or a stale solver hook): the solver state is intact,
     so retry the step rather than abort the run *)
  let genuine_interrupt () =
    match s.interrupt with Some f -> f () | None -> false
  in
  let rec loop () =
    (* poll the budget here too: small instances can run whole iterations
       without the solvers ever reaching an interrupt poll point *)
    if Unix.gettimeofday () > deadline || genuine_interrupt () then
      out_of_budget ()
    else
      match step ~deadline s with
      | Exhausted -> Report.Unsat_config (session_stats s)
      | Done code -> Report.Synthesized (code, session_stats s)
      | Progress cex ->
          (match on_progress with Some f -> f s cex | None -> ());
          loop ()
      | exception Ctx.Timeout -> out_of_budget ()
      | exception Ctx.Interrupted ->
          if genuine_interrupt () then out_of_budget () else loop ()
  in
  loop ()
