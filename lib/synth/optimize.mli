(** Optimization drivers implementing the paper's [minimal]/[maximal]
    pseudo-properties (the outer loop of Algorithm 1). *)

(** Result of minimizing the number of check bits for a target minimum
    distance (the §4.2 / Table 1 experiment). *)
type check_result = {
  code : Hamming.Code.t;
  check_len : int;
  stats : Report.Stats.t;  (** totals across all configurations tried *)
}

(** [minimize_check_len ?timeout ?cex_mode ?verifier ~data_len ~md
    ~check_lo ~check_hi ()] walks check lengths upward from [check_lo]:

    - [Synthesized (r, totals)]: [r.check_len] is the first — hence
      minimal — synthesizable check length;
    - [Unsat_config totals]: every length up to [check_hi] is refuted;
    - [Timed_out totals]: the budget died with nothing to show;
    - [Partial (r, totals)]: the budget died at [r.check_len], but the
      search saw the near-miss candidate [r.code] — its true minimum
      distance is {e not} verified to reach [md] (callers recompute it to
      report the achieved bound).

    [interrupt] is polled cooperatively by the underlying CEGIS loops; an
    interrupted walk returns [Partial]/[Timed_out] like an exhausted one.
    [initial] transfers counterexamples from a previous run (only raw data
    witnesses are configuration-independent; candidate-shaped entries are
    dropped).  [on_round] fires with each check length just before it is
    attempted — the checkpoint hook for resuming the walk where it
    stopped; [on_cex] observes every counterexample learned in any round
    (the checkpoint hook for the pool itself). *)
val minimize_check_len :
  ?timeout:float ->
  ?cex_mode:Cegis.cex_mode ->
  ?verifier:Cegis.verifier_mode ->
  ?encoding:Smtlite.Card.encoding ->
  ?interrupt:(unit -> bool) ->
  ?initial:Cegis.cex list ->
  ?on_round:(int -> unit) ->
  ?on_cex:(Cegis.cex -> unit) ->
  data_len:int ->
  md:int ->
  check_lo:int ->
  check_hi:int ->
  unit ->
  (check_result, Report.Stats.t) Report.outcome

(** One step of the §4.4 set-bit minimization walk. *)
type setbits_step = {
  bound : int;  (** the bound that was in force ([len_1 <= bound]) *)
  achieved : int;  (** set bits of the synthesized generator *)
  generator : Hamming.Code.t;
  step_stats : Report.Stats.t;
}

(** [minimize_set_bits ?timeout ... ~data_len ~check_len ~md ~start_bound
    ~stop_bound ()] repeatedly synthesizes generators with a tightening
    bound on the number of coefficient set bits ([minimal(len_1)]),
    exactly as §4.4: every intermediate generator is returned, newest
    (smallest sum) last — the walk is anytime by construction.  Stops on
    UNSAT, on reaching [stop_bound], on timeout, or when [interrupt]
    fires. *)
val minimize_set_bits :
  ?timeout:float ->
  ?cex_mode:Cegis.cex_mode ->
  ?verifier:Cegis.verifier_mode ->
  ?encoding:Smtlite.Card.encoding ->
  ?interrupt:(unit -> bool) ->
  data_len:int ->
  check_len:int ->
  md:int ->
  start_bound:int ->
  stop_bound:int ->
  unit ->
  setbits_step list
