(** Crash supervision for synthesis workers.

    Production SAT portfolios treat solver workers as crashable; this
    module gives the portfolio the same failure model.  {!run} executes a
    worker body and converts unexpected exceptions — a [Stack_overflow], a
    logic bug, an injected {!Fault.Injected} — into supervised restarts
    with jittered exponential backoff, instead of letting them escape
    through [Domain.join] and destroy the whole race.  Cooperative
    cancellation ({!Smtlite.Ctx.Timeout} / {!Smtlite.Ctx.Interrupted} by
    default) passes through untouched.

    Backoff jitter is deterministic in [(policy.seed, label, attempt)], so
    seeded resilience trials reproduce exactly. *)

type policy = {
  max_restarts : int;  (** crashes beyond this give up (default 3) *)
  backoff_base : float;  (** first-restart delay, seconds (default 0.01) *)
  backoff_max : float;  (** delay ceiling, seconds (default 0.5) *)
  jitter : float;
      (** relative jitter width: delay is scaled by
          [1 + jitter * (u - 0.5)], [u] uniform in [0, 1) (default 0.5) *)
  seed : int;  (** jitter determinism key (default 0) *)
}

val default_policy : policy

(** [backoff_delay policy ~label ~attempt] is the jittered exponential
    delay before restart [attempt] — deterministic in
    [(policy.seed, label, attempt)].  Exposed so other supervision layers
    (the session manager's worker reaping, retrying wire clients) share
    one backoff discipline. *)
val backoff_delay : policy -> label:string -> attempt:int -> float

(** Outcome of a supervised run: the body's value (or, after giving up,
    the last captured exception) plus crash/restart totals — these feed
    {!Report.Stats.worker_crashes} / [worker_restarts]. *)
type 'a run = {
  result : ('a, exn) Stdlib.result;
  crashes : int;  (** unexpected exceptions captured *)
  restarts : int;  (** restarts performed ([crashes - 1] when giving up) *)
}

(** [run ?policy ?label ?is_cancellation body] calls [body ~attempt:0] and
    restarts it with an incremented attempt index after each captured
    crash, sleeping the backoff delay in between; gives up after
    [policy.max_restarts] restarts.  Exceptions for which
    [is_cancellation] holds are re-raised to the caller unchanged.
    Telemetry: [supervisor.crash] / [supervisor.restart] /
    [supervisor.giveup] points, labelled with [label]. *)
val run :
  ?policy:policy ->
  ?label:string ->
  ?is_cancellation:(exn -> bool) ->
  (attempt:int -> 'a) ->
  'a run
