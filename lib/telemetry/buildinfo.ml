(* Build identity: one record describing the code that produced a run.
   [fecsynth version] prints it and every {!Ledger} entry embeds it, so a
   trend that spans a code change can always be split by build. *)

(* The single source of the version string: bin/fecsynth.ml's --version
   and the ledger records both read this constant. *)
let code_version = "1.0.0"

type t = {
  code_version : string;
  git : string option;
  ocaml : string;
  features : string list;
}

(* Compiled-in capabilities, in a stable order.  A feature listed here is
   a claim the test suite enforces, not an aspiration. *)
let features =
  [
    "portfolio";
    "telemetry";
    "metrics";
    "checkpoint";
    "fault-injection";
    "progress";
    "ledger";
    "runtime-lens";
  ]

(* Best effort only: outside a work tree (or without git on PATH) the
   field is simply absent.  Never raises. *)
let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some s when s <> "" -> Some s
    | _ -> None
  with _ -> None

let detect () =
  { code_version; git = git_describe (); ocaml = Sys.ocaml_version; features }

(* The daemon stamps build identity on every /metrics scrape and healthz
   answer; one git subprocess per process lifetime is enough. *)
let current =
  let id = lazy (detect ()) in
  fun () -> Lazy.force id

let to_json t =
  Json.Obj
    [
      ("code_version", Json.Str t.code_version);
      ("git", match t.git with Some g -> Json.Str g | None -> Json.Null);
      ("ocaml", Json.Str t.ocaml);
      ("features", Json.List (List.map (fun f -> Json.Str f) t.features));
    ]

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  {
    code_version = Option.value (str "code_version") ~default:"?";
    git = str "git";
    ocaml = Option.value (str "ocaml") ~default:"?";
    features =
      (match Json.member "features" j with
      | Some (Json.List l) -> List.filter_map Json.to_string_opt l
      | _ -> []);
  }
