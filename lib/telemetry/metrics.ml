(* Typed metrics registry: counters, gauges and log-bucketed histograms,
   guarded by the same single-atomic-load probe as the event layer
   ([State.enabled]).  See metrics.mli for the contract. *)

(* ---------- bucket geometry ----------

   HDR-style log-linear buckets with [sub_bits] = 5: values in [0, 64)
   get one exact bucket each; each power-of-two range [2^k, 2^(k+1)) for
   k >= 6 is split into 32 equal sub-buckets, so the representative
   (bucket lower bound) underestimates a value by at most a factor of
   1/32.  Quantiles over small values (learnt clause sizes, iteration
   counts) are therefore *exact*, and heavy tails stay within ~3%. *)

let sub_bits = 5
let sub_buckets = 1 lsl sub_bits (* 32 *)
let linear_limit = 2 * sub_buckets (* 64: values below get exact buckets *)

let floor_log2 v =
  (* v >= 1 *)
  let k = ref 0 and x = ref v in
  while !x > 1 do
    x := !x lsr 1;
    incr k
  done;
  !k

let index_of v =
  let v = if v < 0 then 0 else v in
  if v < linear_limit then v
  else
    let k = floor_log2 v in
    linear_limit
    + ((k - (sub_bits + 1)) * sub_buckets)
    + ((v lsr (k - sub_bits)) - sub_buckets)

let lower_bound idx =
  if idx < linear_limit then idx
  else
    let off = idx - linear_limit in
    let k = (off / sub_buckets) + sub_bits + 1 in
    (sub_buckets + (off mod sub_buckets)) lsl (k - sub_bits)

(* exclusive upper bound of bucket [idx]; lower_bound is monotonic across
   power-of-two boundaries so this is just the next bucket's lower bound *)
let upper_bound idx = if idx < linear_limit then idx + 1 else lower_bound (idx + 1)

(* ---------- immutable histogram snapshots ---------- *)

module Hist = struct
  type t = {
    counts : int array; (* trailing zeros trimmed: canonical, so (=) works *)
    total : int;
    sum : int;
    vmin : int; (* max_int sentinel when empty *)
    vmax : int; (* min_int sentinel when empty *)
  }

  let trim counts =
    let n = ref (Array.length counts) in
    while !n > 0 && counts.(!n - 1) = 0 do
      decr n
    done;
    Array.sub counts 0 !n

  let make ~counts ~total ~sum ~vmin ~vmax =
    if total = 0 then
      { counts = [||]; total = 0; sum = 0; vmin = max_int; vmax = min_int }
    else { counts = trim counts; total; sum; vmin; vmax }

  let zero = make ~counts:[||] ~total:0 ~sum:0 ~vmin:max_int ~vmax:min_int

  let count h = h.total
  let sum h = h.sum
  let min_value h = if h.total = 0 then None else Some h.vmin
  let max_value h = if h.total = 0 then None else Some h.vmax
  let equal (a : t) b = a = b

  let observe h v =
    let v = if v < 0 then 0 else v in
    let idx = index_of v in
    let counts =
      Array.init
        (max (Array.length h.counts) (idx + 1))
        (fun i ->
          (if i < Array.length h.counts then h.counts.(i) else 0)
          + if i = idx then 1 else 0)
    in
    make ~counts ~total:(h.total + 1) ~sum:(h.sum + v) ~vmin:(min h.vmin v)
      ~vmax:(max h.vmax v)

  let of_list vs = List.fold_left observe zero vs

  let add a b =
    let n = max (Array.length a.counts) (Array.length b.counts) in
    let at c i = if i < Array.length c then c.(i) else 0 in
    make
      ~counts:(Array.init n (fun i -> at a.counts i + at b.counts i))
      ~total:(a.total + b.total) ~sum:(a.sum + b.sum) ~vmin:(min a.vmin b.vmin)
      ~vmax:(max a.vmax b.vmax)

  (* [sub a b] is the per-bucket delta of two cumulative snapshots of the
     same histogram (b taken earlier than a).  min/max are recomputed from
     the surviving buckets (lower bounds), since the true extrema of the
     delta window are not recoverable. *)
  let sub a b =
    let n = max (Array.length a.counts) (Array.length b.counts) in
    let at c i = if i < Array.length c then c.(i) else 0 in
    let counts = Array.init n (fun i -> max 0 (at a.counts i - at b.counts i)) in
    let total = ref 0 and vmin = ref max_int and vmax = ref min_int in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          total := !total + c;
          if lower_bound i < !vmin then vmin := lower_bound i;
          if lower_bound i > !vmax then vmax := lower_bound i
        end)
      counts;
    make ~counts ~total:!total
      ~sum:(max 0 (a.sum - b.sum))
      ~vmin:!vmin ~vmax:!vmax

  (* nearest-rank quantile: rank = max 1 (ceil (q*N)); the result is the
     lower bound of the bucket holding that rank, which for values below
     [linear_limit] is the exact sorted-array answer *)
  let quantile h q =
    if h.total = 0 then None
    else begin
      let rank =
        let r = int_of_float (ceil (q *. float_of_int h.total)) in
        if r < 1 then 1 else if r > h.total then h.total else r
      in
      let res = ref None and cum = ref 0 and i = ref 0 in
      while !res = None && !i < Array.length h.counts do
        cum := !cum + h.counts.(!i);
        if !cum >= rank then res := Some (lower_bound !i);
        incr i
      done;
      !res
    end

  let buckets h =
    let acc = ref [] in
    Array.iteri
      (fun i c ->
        if c > 0 then acc := (lower_bound i, upper_bound i, c) :: !acc)
      h.counts;
    List.rev !acc

  (* non-zero buckets as "lower:count,..." — compact enough to ship as one
     string field per solve event *)
  let to_csv h =
    let b = Buffer.create 32 in
    List.iter
      (fun (lo, _, c) ->
        if Buffer.length b > 0 then Buffer.add_char b ',';
        Buffer.add_string b (string_of_int lo);
        Buffer.add_char b ':';
        Buffer.add_string b (string_of_int c))
      (buckets h);
    Buffer.contents b

  let to_json h =
    let q p = match quantile h p with Some v -> Json.Int v | None -> Json.Null in
    Json.Obj
      [
        ("count", Json.Int h.total);
        ("sum", Json.Int h.sum);
        ("min", (match min_value h with Some v -> Json.Int v | None -> Json.Null));
        ("max", (match max_value h with Some v -> Json.Int v | None -> Json.Null));
        ("p50", q 0.5);
        ("p95", q 0.95);
        ("p99", q 0.99);
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, _, c) -> Json.List [ Json.Int lo; Json.Int c ])
               (buckets h)) );
      ]

  let pp fmt h =
    match (min_value h, quantile h 0.5, quantile h 0.95, max_value h) with
    | Some mn, Some p50, Some p95, Some mx ->
        Format.fprintf fmt "n=%d min=%d p50=%d p95=%d max=%d" h.total mn p50
          p95 mx
    | _ -> Format.fprintf fmt "n=0"
end

(* ---------- mutable accumulator ---------- *)

module Histogram = struct
  type t = {
    mutable counts : int array;
    mutable total : int;
    mutable sum : int;
    mutable vmin : int;
    mutable vmax : int;
  }

  let create () =
    {
      counts = Array.make linear_limit 0;
      total = 0;
      sum = 0;
      vmin = max_int;
      vmax = min_int;
    }

  let observe h v =
    let v = if v < 0 then 0 else v in
    let idx = index_of v in
    if idx >= Array.length h.counts then begin
      let counts = Array.make (idx + 16) 0 in
      Array.blit h.counts 0 counts 0 (Array.length h.counts);
      h.counts <- counts
    end;
    h.counts.(idx) <- h.counts.(idx) + 1;
    h.total <- h.total + 1;
    h.sum <- h.sum + v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v

  let snapshot h =
    Hist.make ~counts:(Array.copy h.counts) ~total:h.total ~sum:h.sum
      ~vmin:h.vmin ~vmax:h.vmax

  let reset h =
    Array.fill h.counts 0 (Array.length h.counts) 0;
    h.total <- 0;
    h.sum <- 0;
    h.vmin <- max_int;
    h.vmax <- min_int
end

(* ---------- metric names and series labels ----------

   A registry key is the full series name: a base metric name plus an
   optional canonical label block, e.g. [serve.worker.busy{worker="0"}].
   The block is canonical at registration time — keys sanitized like
   metric names, pairs sorted, values escaped — so the same labels in
   any order alias the same series and exposition needs no re-sorting. *)

let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char b c
      | '0' .. '9' -> if i = 0 then Buffer.add_char b '_' else Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      let labels =
        List.map (fun (k, v) -> (sanitize k, v)) labels
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let series_key ?(labels = []) name = name ^ render_labels labels

let split_key key =
  match String.index_opt key '{' with
  | None -> (key, "")
  | Some i -> (String.sub key 0 i, String.sub key i (String.length key - i))

(* sanitize only the base name; the label block is already canonical *)
let sanitize_key key =
  let base, labels = split_key key in
  sanitize base ^ labels

(* ---------- the named registry ---------- *)

type counter = { c_value : int Atomic.t }
type gauge = { g_value : float Atomic.t }
type histogram = { h_acc : Histogram.t; h_mutex : Mutex.t }

type entry =
  | E_counter of counter
  | E_gauge of gauge
  | E_histogram of histogram

type sample = Counter of int | Gauge of float | Histogram of Hist.t

let registry : (string, string option * entry) Hashtbl.t = Hashtbl.create 32
let reg_mutex = Mutex.create ()

let register name help make_entry =
  Mutex.protect reg_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (_, e) -> e
      | None ->
          let e = make_entry () in
          Hashtbl.replace registry name (help, e);
          e)

let counter ?help ?labels name =
  let key = series_key ?labels name in
  match register key help (fun () -> E_counter { c_value = Atomic.make 0 }) with
  | E_counter c -> c
  | _ -> invalid_arg ("Metrics.counter: " ^ key ^ " registered with another type")

let gauge ?help ?labels name =
  let key = series_key ?labels name in
  match register key help (fun () -> E_gauge { g_value = Atomic.make 0.0 }) with
  | E_gauge g -> g
  | _ -> invalid_arg ("Metrics.gauge: " ^ key ^ " registered with another type")

let histogram ?help ?labels name =
  let key = series_key ?labels name in
  match
    register key help (fun () ->
        E_histogram { h_acc = Histogram.create (); h_mutex = Mutex.create () })
  with
  | E_histogram h -> h
  | _ ->
      invalid_arg ("Metrics.histogram: " ^ key ^ " registered with another type")

(* updates: one atomic load when disabled, nothing allocated *)

let incr c n = if State.enabled () then ignore (Atomic.fetch_and_add c.c_value n)
let set g v = if State.enabled () then Atomic.set g.g_value v

let observe h v =
  if State.enabled () then begin
    Mutex.lock h.h_mutex;
    Histogram.observe h.h_acc v;
    Mutex.unlock h.h_mutex
  end

(* reads (never gated: inspection must work after the sink is gone) *)

let counter_value c = Atomic.get c.c_value
let gauge_value g = Atomic.get g.g_value

let histogram_value h =
  Mutex.protect h.h_mutex (fun () -> Histogram.snapshot h.h_acc)

let sample_of = function
  | E_counter c -> Counter (counter_value c)
  | E_gauge g -> Gauge (gauge_value g)
  | E_histogram h -> Histogram (histogram_value h)

let dump () =
  Mutex.protect reg_mutex (fun () ->
      Hashtbl.fold (fun name (_, e) acc -> (name, sample_of e) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Mutex.protect reg_mutex (fun () ->
      Hashtbl.iter
        (fun _ (_, e) ->
          match e with
          | E_counter c -> Atomic.set c.c_value 0
          | E_gauge g -> Atomic.set g.g_value 0.0
          | E_histogram h ->
              Mutex.protect h.h_mutex (fun () -> Histogram.reset h.h_acc))
        registry)

(* ---------- Prometheus text exposition ---------- *)

let float_repr v =
  (* shortest representation that round-trips through float_of_string *)
  let s = Printf.sprintf "%.12g" v in
  let s = if float_of_string s = v then s else Printf.sprintf "%.17g" v in
  (* keep the token float-shaped: the parser distinguishes counters from
     gauges by whether the value parses as an int *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ ".0"

(* merge a canonical label block with an extra le pair for bucket lines *)
let with_le lbl le =
  if lbl = "" then Printf.sprintf "{le=\"%s\"}" le
  else
    String.sub lbl 0 (String.length lbl - 1) ^ Printf.sprintf ",le=\"%s\"}" le

(* [header] is true on the first series of a family: labeled series share
   one # HELP/# TYPE block under the sanitized base name *)
let expose_sample b ~header name lbl help sample =
  let n = sanitize name in
  if header then
    match help with
    | Some h -> Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" n h)
    | None -> ()
  else ();
  (match sample with
  | Counter _ when header ->
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n)
  | Gauge _ when header ->
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n)
  | Histogram _ when header ->
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n)
  | _ -> ());
  match sample with
  | Counter v -> Buffer.add_string b (Printf.sprintf "%s%s %d\n" n lbl v)
  | Gauge v ->
      Buffer.add_string b (Printf.sprintf "%s%s %s\n" n lbl (float_repr v))
  | Histogram h ->
      let cum = ref 0 in
      List.iter
        (fun (_, up, c) ->
          cum := !cum + c;
          (* buckets hold integer values in [lo, up): the inclusive
             Prometheus upper bound is up - 1 *)
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" n
               (with_le lbl (string_of_int (up - 1)))
               !cum))
        (Hist.buckets h);
      Buffer.add_string b
        (Printf.sprintf "%s_bucket%s %d\n" n (with_le lbl "+Inf") (Hist.count h));
      Buffer.add_string b (Printf.sprintf "%s_sum%s %d\n" n lbl (Hist.sum h));
      Buffer.add_string b
        (Printf.sprintf "%s_count%s %d\n" n lbl (Hist.count h));
      (match (Hist.min_value h, Hist.max_value h) with
      | Some mn, Some mx ->
          (* non-standard extension lines so exposition round-trips
             losslessly back into a Hist.t *)
          Buffer.add_string b (Printf.sprintf "%s_min%s %d\n" n lbl mn);
          Buffer.add_string b (Printf.sprintf "%s_max%s %d\n" n lbl mx)
      | _ -> ())

let expose () =
  let b = Buffer.create 1024 in
  let entries =
    (* family order: sanitized base name, then label block — same-base
       series stay adjacent even when an unrelated name sorts between
       their raw keys (e.g. [foo_bar] between [foo] and [foo{...}]) *)
    dump ()
    |> List.map (fun (key, s) ->
           let base, lbl = split_key key in
           (key, base, lbl, s))
    |> List.sort (fun (_, b1, l1, _) (_, b2, l2, _) ->
           match String.compare (sanitize b1) (sanitize b2) with
           | 0 -> String.compare l1 l2
           | c -> c)
  in
  let last_family = ref None in
  List.iter
    (fun (key, base, lbl, s) ->
      let help =
        Mutex.protect reg_mutex (fun () ->
            Option.bind (Hashtbl.find_opt registry key) fst)
      in
      let family = sanitize base in
      let header = !last_family <> Some family in
      last_family := Some family;
      expose_sample b ~header base lbl help s)
    entries;
  Buffer.contents b

(* ---------- exposition parser (tests, trace diff on metrics files) ---------- *)

(* [parse_labels] reads a text-format label block ([{k="v",...}],
   backslash/quote/newline escapes in values) and returns the pairs in
   order of appearance; callers re-canonicalize via [render_labels]. *)
let parse_labels s =
  let n = String.length s in
  if n < 2 || s.[0] <> '{' || s.[n - 1] <> '}' then None
  else if n = 2 then Some []
  else begin
    let pos = ref 1 and out = ref [] and ok = ref true in
    (try
       while !pos < n - 1 do
         let start = !pos in
         while !pos < n && s.[!pos] <> '=' do
           pos := !pos + 1
         done;
         if !pos >= n - 1 then raise Exit;
         let k = String.sub s start (!pos - start) in
         pos := !pos + 1;
         if !pos >= n || s.[!pos] <> '"' then raise Exit;
         pos := !pos + 1;
         let b = Buffer.create 8 in
         let closed = ref false in
         while not !closed do
           if !pos >= n then raise Exit;
           (match s.[!pos] with
           | '"' -> closed := true
           | '\\' ->
               if !pos + 1 >= n then raise Exit;
               (match s.[!pos + 1] with
               | 'n' -> Buffer.add_char b '\n'
               | c -> Buffer.add_char b c);
               pos := !pos + 1
           | c -> Buffer.add_char b c);
           pos := !pos + 1
         done;
         out := (k, Buffer.contents b) :: !out;
         if !pos < n - 1 then
           if s.[!pos] = ',' then pos := !pos + 1 else raise Exit
         else if !pos <> n - 1 then raise Exit
       done
     with Exit -> ok := false);
    if !ok then Some (List.rev !out) else None
  end

let parse_exposition text =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  (* histogram family under construction: one series per label set *)
  let module S = struct
    type st = {
      mutable buckets : (int * int) list; (* (le, cumulative), reversed *)
      mutable sum : int;
      mutable count : int;
      mutable vmin : int option;
      mutable vmax : int option;
    }
  end in
  let hname = ref None in
  let hseries : (string, S.st) Hashtbl.t = Hashtbl.create 4 in
  let horder = ref [] (* label blocks in order of first appearance *) in
  let hget lbl =
    match Hashtbl.find_opt hseries lbl with
    | Some st -> st
    | None ->
        let st =
          { S.buckets = []; sum = 0; count = 0; vmin = None; vmax = None }
        in
        Hashtbl.replace hseries lbl st;
        horder := lbl :: !horder;
        st
  in
  let out = ref [] in
  let finish_hist () =
    match !hname with
    | None -> Ok ()
    | Some n ->
        let ok = ref (Ok ()) in
        List.iter
          (fun lbl ->
            let st = Hashtbl.find hseries lbl in
            let counts = ref (Array.make 1 0) in
            let prev = ref 0 in
            List.iter
              (fun (le, cum) ->
                let idx = index_of le in
                if idx >= Array.length !counts then begin
                  let c = Array.make (idx + 1) 0 in
                  Array.blit !counts 0 c 0 (Array.length !counts);
                  counts := c
                end;
                if cum < !prev then ok := err "%s: non-monotonic buckets" n
                else begin
                  !counts.(idx) <- cum - !prev;
                  prev := cum
                end)
              (List.rev st.S.buckets);
            match !ok with
            | Error _ -> ()
            | Ok () ->
                let vmin = Option.value st.S.vmin ~default:max_int in
                let vmax = Option.value st.S.vmax ~default:min_int in
                out :=
                  ( n ^ lbl,
                    Histogram
                      (Hist.make ~counts:!counts ~total:st.S.count
                         ~sum:st.S.sum ~vmin ~vmax) )
                  :: !out)
          (List.rev !horder);
        let res = !ok in
        hname := None;
        Hashtbl.reset hseries;
        horder := [];
        res
  in
  let split_line l =
    (* "name{labels} value" or "name value".  The label block cannot be
       cut at the first space: quoted label values may legally contain
       spaces, commas and braces, so the block end is found by walking
       it quote-aware (backslash escapes honoured). *)
    let n = String.length l in
    let brace =
      match (String.index_opt l '{', String.index_opt l ' ') with
      | Some br, Some sp when sp < br -> None (* '{' is inside the value *)
      | br, _ -> br
    in
    match brace with
    | None -> (
        match String.index_opt l ' ' with
        | None -> None
        | Some sp ->
            let name = String.sub l 0 sp in
            let value = String.trim (String.sub l sp (n - sp)) in
            Some (name, None, value))
    | Some br ->
        let pos = ref (br + 1) and in_q = ref false and close = ref None in
        while !close = None && !pos < n do
          (match l.[!pos] with
          | '"' -> in_q := not !in_q
          | '\\' when !in_q -> pos := !pos + 1
          | '}' when not !in_q -> close := Some !pos
          | _ -> ());
          pos := !pos + 1
        done;
        (match !close with
        | None -> None
        | Some e ->
            let value = String.trim (String.sub l (e + 1) (n - e - 1)) in
            if value = "" then None
            else
              Some
                ( String.sub l 0 br,
                  Some (String.sub l br (e + 1 - br)),
                  value ))
  in
  (* parsed labels, canonically re-rendered; "" when absent *)
  let canonical_labels label =
    match label with
    | None -> Some []
    | Some lbl -> parse_labels lbl
  in
  let strip_suffix s suf =
    let ls = String.length s and lf = String.length suf in
    if ls > lf && String.sub s (ls - lf) lf = suf then Some (String.sub s 0 (ls - lf))
    else None
  in
  let rec go = function
    | [] -> ( match finish_hist () with Ok () -> Ok () | Error _ as e -> e)
    | l :: rest ->
        let l = String.trim l in
        if String.length l > 0 && l.[0] = '#' then begin
          match String.split_on_char ' ' l with
          | "#" :: "TYPE" :: name :: [ kind ] -> (
              match finish_hist () with
              | Error _ as e -> e
              | Ok () ->
                  if kind = "histogram" then hname := Some name;
                  go rest)
          | _ -> go rest (* HELP and comments *)
        end
        else
          match split_line l with
          | None -> err "unparseable line: %s" l
          | Some (name, label, value) -> (
              let int_member st field =
                match int_of_string_opt value with
                | Some v ->
                    (match field with
                    | `Sum -> st.S.sum <- v
                    | `Count -> st.S.count <- v
                    | `Min -> st.S.vmin <- Some v
                    | `Max -> st.S.vmax <- Some v);
                    go rest
                | None -> err "%s: bad value: %s" name value
              in
              match !hname with
              | Some hn when strip_suffix name "_bucket" = Some hn -> (
                  match (canonical_labels label, int_of_string_opt value) with
                  | Some pairs, Some cum -> (
                      let le, others =
                        List.partition (fun (k, _) -> k = "le") pairs
                      in
                      let lbl = render_labels others in
                      match le with
                      | [ (_, "+Inf") ] -> go rest (* redundant with _count *)
                      | [ (_, le) ] -> (
                          match int_of_string_opt le with
                          | Some le ->
                              let st = hget lbl in
                              st.S.buckets <- (le, cum) :: st.S.buckets;
                              go rest
                          | None -> err "%s: bad bucket line: %s" hn l)
                      | _ -> err "%s: bad bucket line: %s" hn l)
                  | _ -> err "%s: bad bucket line: %s" hn l)
              | Some hn when name = hn ^ "_sum" -> (
                  match canonical_labels label with
                  | Some pairs -> int_member (hget (render_labels pairs)) `Sum
                  | None -> err "%s: bad labels: %s" hn l)
              | Some hn when name = hn ^ "_count" -> (
                  match canonical_labels label with
                  | Some pairs -> int_member (hget (render_labels pairs)) `Count
                  | None -> err "%s: bad labels: %s" hn l)
              | Some hn when name = hn ^ "_min" -> (
                  match canonical_labels label with
                  | Some pairs -> int_member (hget (render_labels pairs)) `Min
                  | None -> err "%s: bad labels: %s" hn l)
              | Some hn when name = hn ^ "_max" -> (
                  match canonical_labels label with
                  | Some pairs -> int_member (hget (render_labels pairs)) `Max
                  | None -> err "%s: bad labels: %s" hn l)
              | _ -> (
                  match finish_hist () with
                  | Error _ as e -> e
                  | Ok () -> (
                      match canonical_labels label with
                      | None -> err "%s: bad labels: %s" name l
                      | Some pairs -> (
                          let key = name ^ render_labels pairs in
                          (* scalar: prefer int (counter), else float (gauge) *)
                          match int_of_string_opt value with
                          | Some v ->
                              out := (key, Counter v) :: !out;
                              go rest
                          | None -> (
                              match float_of_string_opt value with
                              | Some v ->
                                  out := (key, Gauge v) :: !out;
                                  go rest
                              | None -> err "%s: bad value: %s" name value)))))
  in
  match go lines with
  | Error _ as e -> e
  | Ok () ->
      Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) (List.rev !out))

(* ---------- periodic-flush sink ---------- *)

let flush_sink ?(min_interval = 1.0) write =
  let mutex = Mutex.create () in
  let last = ref neg_infinity in
  let flush_now () =
    Mutex.protect mutex (fun () ->
        last := State.now ();
        write (expose ()))
  in
  {
    Sink.emit =
      (fun _ ->
        (* racy fast check on purpose; the mutex re-check decides *)
        if State.now () -. !last >= min_interval then
          Mutex.protect mutex (fun () ->
              if State.now () -. !last >= min_interval then begin
                last := State.now ();
                write (expose ())
              end));
    flush = flush_now;
  }
