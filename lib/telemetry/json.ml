type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- serialization ---------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that still round-trips closely enough for
       timing data; %.17g round-trips exactly but is noisy to read *)
    let s = Printf.sprintf "%.12g" f in
    (* "1e-05" and "3.5" are valid JSON numbers; "5." is not *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  write b j;
  Buffer.contents b

(* ---------- parsing ---------- *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   utf8_of_code b code
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false)
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------- accessors ---------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
