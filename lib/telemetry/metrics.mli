(** Typed metrics registry behind the telemetry enable-guard.

    A process-global registry of named counters, gauges and log-bucketed
    histograms.  Registration ({!counter}/{!gauge}/{!histogram}) is cheap
    and idempotent and normally happens once at module-init time; updates
    ({!incr}/{!set}/{!observe}) first perform the {e same} single atomic
    load as {!Telemetry.enabled} and return immediately — allocating
    nothing — when no sink is installed, so hot paths (the SAT inner
    loop) can feed the registry unconditionally.

    Reads are never gated: a CLI can inspect or {!expose} whatever
    accumulated while a sink was live.

    Histograms are HDR-style log-linear: values in [0, 64) get one exact
    bucket each, larger values land in 32 sub-buckets per power-of-two
    range, so quantiles are exact for small values and within a 1/32
    relative error on heavy tails.  Quantiles use the nearest-rank rule
    (rank ⌈q·N⌉) over bucket lower bounds, matching an exact sorted-array
    reference for values below 64. *)

(** {1 Immutable histogram snapshots} *)

module Hist : sig
  (** A canonical immutable snapshot: structural equality ([=]) is
      semantic equality, so snapshots can live inside records compared
      with [=] (e.g. the stats merge-monoid tests). *)
  type t

  val zero : t

  (** Pointwise merge — associative and commutative with identity
      {!zero}, making [t] a commutative monoid. *)
  val add : t -> t -> t

  (** [sub a b] is the per-bucket delta between a later cumulative
      snapshot [a] and an earlier one [b] of the same histogram.  The
      delta's min/max are approximated by surviving bucket bounds. *)
  val sub : t -> t -> t

  (** Functional observe (O(buckets) copy — use {!Histogram} to
      accumulate in hot code). *)
  val observe : t -> int -> t

  val of_list : int list -> t
  val count : t -> int

  (** Sum of observed values (negative observations clamp to 0). *)
  val sum : t -> int

  val min_value : t -> int option
  val max_value : t -> int option
  val equal : t -> t -> bool

  (** [quantile h q] is the nearest-rank q-quantile (rank [⌈q·N⌉],
      clamped to [1..N]) as the lower bound of the bucket holding that
      rank; [None] when empty. *)
  val quantile : t -> float -> int option

  (** Non-empty buckets as [(lower, upper_exclusive, count)] in
      increasing order. *)
  val buckets : t -> (int * int * int) list

  (** Non-empty buckets as ["lower:count,..."] — the compact form shipped
      as a span field. *)
  val to_csv : t -> string

  val to_json : t -> Json.t
  val pp : Format.formatter -> t -> unit
end

(** {1 Mutable accumulator} *)

(** An unsynchronized accumulator for single-owner hot paths (one per
    solver instance).  Take {!Histogram.snapshot}s to merge or compare. *)
module Histogram : sig
  type t

  val create : unit -> t
  val observe : t -> int -> unit
  val snapshot : t -> Hist.t
  val reset : t -> unit
end

(** {1 The named registry} *)

type counter
type gauge
type histogram

(** Find-or-create; [help] is kept for exposition.  [labels] name one
    series within the metric family (e.g. [("worker", "0")] for
    per-worker gauges): the same base name with different label sets
    yields independent values sharing one [# TYPE] block in {!expose}.
    Label order is canonicalized, so the same pairs in any order alias
    the same series.  Raises [Invalid_argument] if the series is already
    registered with a different type. *)
val counter : ?help:string -> ?labels:(string * string) list -> string -> counter

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  ?help:string -> ?labels:(string * string) list -> string -> histogram

(** [incr c n] adds [n] when telemetry is enabled; a single atomic load
    and nothing else when disabled. *)
val incr : counter -> int -> unit

(** [set g v] stores the gauge level when telemetry is enabled. *)
val set : gauge -> float -> unit

(** [observe h v] records one histogram observation (under the metric's
    own mutex) when telemetry is enabled. *)
val observe : histogram -> int -> unit

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_value : histogram -> Hist.t

type sample = Counter of int | Gauge of float | Histogram of Hist.t

(** All registered metrics with their current values, sorted by name. *)
val dump : unit -> (string * sample) list

(** Reset every registered metric to its zero (registrations persist). *)
val reset : unit -> unit

(** {1 Prometheus text exposition} *)

(** Metric names sanitized to [[A-Za-z_][A-Za-z0-9_]*] (dots become
    underscores). *)
val sanitize : string -> string

(** [series_key ?labels name] is the registry key for one series: the
    base name plus the canonical label block ([name{k="v",...}], pairs
    sorted, values escaped) — the shape {!dump} reports. *)
val series_key : ?labels:(string * string) list -> string -> string

(** Like {!sanitize} for full series keys: sanitizes the base name and
    leaves the (already canonical) label block intact. *)
val sanitize_key : string -> string

(** [expose ()] renders the registry in Prometheus text format:
    [# TYPE] lines, cumulative [_bucket{le="..."}] / [_sum] / [_count]
    series for histograms, plus non-standard [_min]/[_max] lines so the
    output parses back losslessly. *)
val expose : unit -> string

(** [parse_exposition s] parses {!expose}-format text back into
    [(sanitized_series_key, sample)] pairs sorted by key — labeled
    series come back as [name{k="v",...}] with the label block
    re-canonicalized.  Inverse of {!expose} up to name sanitization. *)
val parse_exposition : string -> ((string * sample) list, string) result

(** {1 Periodic-flush sink}

    [flush_sink ~min_interval write] is a {!Sink.t} that re-renders
    {!expose} through [write] at most every [min_interval] seconds
    (default 1.0), piggybacking on event traffic — no background thread.
    A final render happens on [flush].  Compose with other sinks via
    {!Sink.tee}. *)
val flush_sink : ?min_interval:float -> (string -> unit) -> Sink.t
