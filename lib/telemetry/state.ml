(* The process-global telemetry state, factored out of [Telemetry] so that
   [Metrics] (re-exported *through* Telemetry) can share the same
   single-atomic-load guard without a module cycle.  Nothing here is part
   of the public surface; [Telemetry] re-exports what callers need. *)

(* The telemetry epoch: all timestamps are offsets from process start, so
   they are small, readable, and unaffected by wall-clock jumps between
   runs (within a run, gettimeofday is monotonic for all practical
   purposes on the hosts we target; there is no monotonic clock in the
   stdlib without C stubs, and this library is dependency-free by design). *)
let epoch = Unix.gettimeofday ()
let now () = Unix.gettimeofday () -. epoch
let state : Sink.t option Atomic.t = Atomic.make None
let enabled () = Atomic.get state <> None
