(* In-memory flight recorder: a bounded ring of the most recent
   telemetry events per domain, kept so that when a worker is reaped or
   a crash record is journaled, the daemon can dump "what was it doing"
   as a postmortem NDJSON tail.

   Discipline mirrors the rest of the telemetry stack:

   - disabled costs one atomic load and allocates nothing (the same
     guard shape as [State.enabled], asserted by Gc.minor_words in
     test_telemetry);
   - recording is lock-free on the hot path: each domain owns its ring
     (single writer), registered once under a mutex; writes are a plain
     array store plus a position bump;
   - [snapshot]/[dump] read other domains' rings racily — events are
     immutable values, so the worst case is a slightly torn view of
     *which* events made the cut, never a torn event.  Postmortems are
     diagnostics, not ground truth; the ledger stays authoritative. *)

type ring = {
  domain : int;  (* Domain id at registration, for labeling only *)
  slots : Sink.event array;
  mutable written : int;  (* total events ever recorded into [slots] *)
}

type t = {
  capacity : int;
  dir : string;  (* where postmortem files land *)
  mutex : Mutex.t;  (* guards [rings] registration and [dumped] *)
  mutable rings : ring list;
  mutable dumped : int;  (* postmortem sequence number *)
}

let state : t option Atomic.t = Atomic.make None

let enabled () = Atomic.get state <> None

let enable ?(capacity = 512) ~dir () =
  let capacity = max 1 capacity in
  Atomic.set state
    (Some { capacity; dir; mutex = Mutex.create (); rings = []; dumped = 0 })

let disable () = Atomic.set state None

(* A ring is found via DLS; the recorder instance it was registered with
   rides along so enable/disable cycles (tests) never write into a ring
   the current instance does not know about. *)
let ring_key : (t * ring) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let dummy = Sink.Point { ts = 0.0; name = ""; fields = [] }

let register t cell =
  let r =
    {
      domain = (Domain.self () :> int);
      slots = Array.make t.capacity dummy;
      written = 0;
    }
  in
  Mutex.protect t.mutex (fun () -> t.rings <- r :: t.rings);
  cell := Some (t, r);
  r

let record ev =
  match Atomic.get state with
  | None -> ()
  | Some t ->
      let cell = Domain.DLS.get ring_key in
      let r =
        match !cell with
        | Some (t', r) when t' == t -> r
        | _ -> register t cell
      in
      r.slots.(r.written mod t.capacity) <- ev;
      r.written <- r.written + 1

let sink () = { Sink.emit = record; flush = (fun () -> ()) }

let event_ts = function
  | Sink.Span_begin { ts; _ }
  | Sink.Span_end { ts; _ }
  | Sink.Counter { ts; _ }
  | Sink.Gauge { ts; _ }
  | Sink.Point { ts; _ } -> ts

let snapshot () =
  match Atomic.get state with
  | None -> []
  | Some t ->
      let rings = Mutex.protect t.mutex (fun () -> t.rings) in
      List.concat_map
        (fun r ->
          let written = r.written in
          let n = min written t.capacity in
          let start = written - n in
          List.init n (fun i -> r.slots.((start + i) mod t.capacity)))
        rings
      |> List.sort (fun a b -> Float.compare (event_ts a) (event_ts b))

(* Postmortems are whole-file artifacts, so tmp+rename like the dashboard:
   a reader never sees a half-written tail on top of a crash. *)
let dump ?(fields = []) ~reason () =
  match Atomic.get state with
  | None -> None
  | Some t ->
      let events = snapshot () in
      let seq =
        Mutex.protect t.mutex (fun () ->
            let n = t.dumped in
            t.dumped <- n + 1;
            n)
      in
      let path =
        Filename.concat t.dir
          (Printf.sprintf "postmortem-%d-%d.ndjson" (Unix.getpid ()) seq)
      in
      let last_ts =
        match List.rev events with [] -> State.now () | ev :: _ -> event_ts ev
      in
      let trailer =
        (* stamped after every recorded event so the postmortem is a
           self-describing, parseable trace: the trailer names the dump
           reason and carries correlation fields (e.g. the reaped
           request id) *)
        Sink.Point
          {
            ts = last_ts;
            name = "flight.dump";
            fields = ("reason", Sink.Str reason) :: fields;
          }
      in
      (try
         let tmp = path ^ ".tmp" in
         let oc = open_out tmp in
         List.iter
           (fun ev ->
             output_string oc (Json.to_string (Sink.json_of_event ev));
             output_char oc '\n')
           (events @ [ trailer ]);
         close_out oc;
         Sys.rename tmp path;
         Some path
       with Sys_error _ -> None)
