(* Offline analysis of NDJSON traces (and BENCH_*.json files): the read
   side of the telemetry layer.  Everything here works on file *content*
   strings so it is trivially testable without touching the filesystem. *)

(* ---------- NDJSON parsing ---------- *)

type parsed = { events : Sink.event list; truncated : bool }

let value_of_json = function
  | Json.Bool b -> Sink.Bool b
  | Json.Int n -> Sink.Int n
  | Json.Float f -> Sink.Float f
  | Json.Str s -> Sink.Str s
  | (Json.Null | Json.List _ | Json.Obj _) as j -> Sink.Str (Json.to_string j)

let event_of_json j =
  let str_field key =
    match Option.bind (Json.member key j) Json.to_string_opt with
    | Some s -> s
    | None -> raise (Json.Parse_error (Printf.sprintf "missing %s" key))
  in
  let kind = str_field "kind" in
  let name = str_field "name" in
  let ts =
    match Option.bind (Json.member "ts" j) Json.to_float with
    | Some ts -> ts
    | None -> raise (Json.Parse_error "missing ts")
  in
  let int_field key = Option.bind (Json.member key j) Json.to_int in
  let float_field key = Option.bind (Json.member key j) Json.to_float in
  let structural =
    [ "ts"; "kind"; "name"; "id"; "parent"; "dur"; "value" ]
  in
  let fields =
    match j with
    | Json.Obj entries ->
        List.filter_map
          (fun (k, v) ->
            if List.mem k structural then None else Some (k, value_of_json v))
          entries
    | _ -> raise (Json.Parse_error "event is not an object")
  in
  match kind with
  | "span_begin" ->
      let id =
        match int_field "id" with
        | Some id -> id
        | None -> raise (Json.Parse_error "span_begin: missing id")
      in
      Sink.Span_begin { ts; id; parent = int_field "parent"; name; fields }
  | "span_end" ->
      let id =
        match int_field "id" with
        | Some id -> id
        | None -> raise (Json.Parse_error "span_end: missing id")
      in
      let dur = Option.value (float_field "dur") ~default:0.0 in
      Sink.Span_end { ts; id; name; dur; fields }
  | "counter" ->
      let value = Option.value (int_field "value") ~default:0 in
      Sink.Counter { ts; name; value; fields }
  | "gauge" ->
      let value = Option.value (float_field "value") ~default:0.0 in
      Sink.Gauge { ts; name; value; fields }
  | _ ->
      (* "event", and any kind a future writer invents: keep the
         ts/name/fields payload rather than failing the whole trace *)
      Sink.Point { ts; name; fields }

(* A process killed mid-write leaves a final line with no newline
   terminator: that specific damage is tolerated ([truncated] = true), so
   a trace survives the very crash telemetry exists to explain.  Any
   malformed line that is newline-terminated is real corruption and an
   [Error] naming the line. *)
let of_string content =
  let ends_with_newline =
    String.length content = 0 || content.[String.length content - 1] = '\n'
  in
  let lines =
    match List.rev (String.split_on_char '\n' content) with
    | "" :: rest -> List.rev rest (* drop the split artifact after a final \n *)
    | rest -> List.rev rest
  in
  let n_lines = List.length lines in
  let truncated = ref false in
  let rec go acc line_no = function
    | [] -> Ok { events = List.rev acc; truncated = !truncated }
    | "" :: rest -> go acc (line_no + 1) rest
    | line :: rest -> (
        match event_of_json (Json.of_string line) with
        | ev -> go (ev :: acc) (line_no + 1) rest
        | exception Json.Parse_error msg ->
            if line_no = n_lines && not ends_with_newline then begin
              truncated := true;
              go acc (line_no + 1) rest
            end
            else Error (Printf.sprintf "line %d: %s" line_no msg))
  in
  go [] 1 lines

(* ---------- validation (trace check) ---------- *)

type check = {
  total : int;
  counts : ((string * string) * int) list;
  check_truncated : bool;
  unbalanced_spans : int;
  out_of_order : int;
  unknown_fields : int;
  unknown_field_names : string list;
}

(* Every custom field key the current writers emit and the analyzers
   understand.  Keys outside this set come from a newer writer (the way
   "request" did when span context was introduced): they are kept as
   custom fields and surfaced by [check] as a warning count, never an
   error — forward compatibility is part of the trace format contract. *)
let known_fields =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun k -> Hashtbl.replace tbl k ())
    [
      "action"; "alloc_words"; "analyze_s"; "attempt"; "backoff_attempt";
      "budget_s"; "cand_weight"; "cex_mode"; "cex_weight"; "cexes";
      "check_len"; "clauses"; "config"; "conflicts"; "consumed"; "crashes";
      "data_len"; "decisions"; "delay_s"; "domain"; "dur_s"; "encoding";
      "error_prob"; "exn"; "extra_constraints"; "finished"; "flips_ge_md";
      "id"; "interval_s"; "iter";
      "iterations"; "jobs"; "k"; "learnt_size_hist"; "level"; "major_n";
      "major_s"; "min_distance"; "minor_n"; "minor_s";
      "n"; "new_clauses"; "new_vars"; "op"; "outcome"; "param"; "portfolio";
      "proof_steps"; "propagate_s"; "propagations"; "published";
      "queue_depth"; "queue_wait_s"; "reason"; "request";
      "restart_interval_s"; "restart_s"; "restarts"; "result";
      "resumed_cexes"; "round"; "rounds"; "samples"; "scale"; "scheduler";
      "seed"; "session"; "set_bits"; "site"; "stats.elapsed_s";
      "stats.iterations"; "stats.learnt_size_p50"; "stats.learnt_size_p95";
      "stats.learnt_size_p99"; "stats.syn_conflicts"; "stats.ver_conflicts";
      "stats.verifier_calls"; "stats.worker_crashes"; "stats.worker_restarts";
      "timeout"; "timeout_s"; "undetected"; "vars"; "verdict"; "verifier";
      "wait_s"; "walk"; "wall_s"; "winner"; "words"; "worker";
    ];
  tbl

(* Cross-domain events funnel through one sink mutex, so a later-captured
   timestamp can legitimately be written slightly before an earlier one
   from another domain.  Only regressions beyond this slack are flagged. *)
let reorder_slack = 0.05

let stream_of_fields fields =
  match List.assoc_opt "worker" fields with
  | Some (Sink.Int n) -> string_of_int n
  | Some (Sink.Str s) -> s
  | Some (Sink.Bool b) -> string_of_bool b
  | Some (Sink.Float f) -> string_of_float f
  | None -> ""

let event_fields = function
  | Sink.Span_begin { fields; _ }
  | Sink.Span_end { fields; _ }
  | Sink.Counter { fields; _ }
  | Sink.Gauge { fields; _ }
  | Sink.Point { fields; _ } -> fields

let event_ts = function
  | Sink.Span_begin { ts; _ }
  | Sink.Span_end { ts; _ }
  | Sink.Counter { ts; _ }
  | Sink.Gauge { ts; _ }
  | Sink.Point { ts; _ } -> ts

let check (p : parsed) =
  let counts : (string * string, int) Hashtbl.t = Hashtbl.create 32 in
  let open_spans : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let last_ts : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let unknown : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let unbalanced = ref 0 and out_of_order = ref 0 and total = ref 0 in
  let unknown_events = ref 0 in
  List.iter
    (fun ev ->
      incr total;
      let strange =
        List.fold_left
          (fun acc (k, _) ->
            if Hashtbl.mem known_fields k then acc
            else begin
              Hashtbl.replace unknown k ();
              true
            end)
          false (event_fields ev)
      in
      if strange then incr unknown_events;
      let key = (Sink.event_kind ev, Sink.event_name ev) in
      Hashtbl.replace counts key
        (1 + Option.value (Hashtbl.find_opt counts key) ~default:0);
      (match ev with
      | Sink.Span_begin { id; _ } -> Hashtbl.replace open_spans id ()
      | Sink.Span_end { id; _ } ->
          if Hashtbl.mem open_spans id then Hashtbl.remove open_spans id
          else incr unbalanced (* end without a begin *)
      | _ -> ());
      let stream = stream_of_fields (event_fields ev) in
      let ts = event_ts ev in
      (match Hashtbl.find_opt last_ts stream with
      | Some prev when ts < prev -. reorder_slack -> incr out_of_order
      | _ -> ());
      match Hashtbl.find_opt last_ts stream with
      | Some prev when prev > ts -> ()
      | _ -> Hashtbl.replace last_ts stream ts)
    p.events;
  {
    total = !total;
    counts =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []);
    check_truncated = p.truncated;
    unbalanced_spans = !unbalanced + Hashtbl.length open_spans;
    out_of_order = !out_of_order;
    unknown_fields = !unknown_events;
    unknown_field_names =
      List.sort String.compare
        (Hashtbl.fold (fun k () acc -> k :: acc) unknown []);
  }

(* ---------- span tree and phase attribution ---------- *)

type span = {
  id : int;
  name : string;
  parent : int option;
  t0 : float;
  dur : float;
  self : float; (* dur minus the summed durations of direct children *)
  begin_fields : Sink.fields;
  end_fields : Sink.fields;
}

let float_field fields key =
  match List.assoc_opt key fields with
  | Some (Sink.Float f) -> Some f
  | Some (Sink.Int n) -> Some (float_of_int n)
  | _ -> None

let int_field fields key =
  match List.assoc_opt key fields with
  | Some (Sink.Int n) -> Some n
  | _ -> None

(* Completed spans (begin and end both present), in end order, with
   self-times computed from direct children. *)
let spans (p : parsed) =
  let begins = Hashtbl.create 64 in
  let child_time : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let acc = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Sink.Span_begin { ts; id; parent; name; fields } ->
          Hashtbl.replace begins id (ts, parent, name, fields)
      | Sink.Span_end { id; dur; fields; _ } -> (
          match Hashtbl.find_opt begins id with
          | None -> ()
          | Some (t0, parent, name, begin_fields) ->
              (match parent with
              | Some pid ->
                  Hashtbl.replace child_time pid
                    (dur
                    +. Option.value (Hashtbl.find_opt child_time pid)
                         ~default:0.0)
              | None -> ());
              acc :=
                {
                  id;
                  name;
                  parent;
                  t0;
                  dur;
                  self = 0.0;
                  begin_fields;
                  end_fields = fields;
                }
                :: !acc)
      | _ -> ())
    p.events;
  List.rev !acc
  |> List.map (fun sp ->
         let children =
           Option.value (Hashtbl.find_opt child_time sp.id) ~default:0.0
         in
         { sp with self = Float.max 0.0 (sp.dur -. children) })

type phase = { phase : string; total_s : float; calls : int }

type report = {
  events : int;
  wall_s : float;
  busy_s : float; (* summed root-span time; > wall_s when domains overlap *)
  unattributed_s : float;
  attributed_pct : float;
  iterations : int;
  phases : phase list; (* sorted by total_s, descending *)
  sat_totals : (string * int) list;
  slowest : (int * float * (string * float) list) list;
      (* (iteration number, duration, direct children by name) *)
}

(* Map one completed span's self-time onto named phases.  [sat.solve]
   spans carry their own inner-loop split (propagate/analyze/restart
   seconds measured by the solver when tracing is on); the remainder of
   the solver's self-time is clause management, branching and encoding
   walk ("sat.other"). *)
let phases_of_span sp =
  match sp.name with
  | "sat.solve" -> (
      match
        ( float_field sp.end_fields "propagate_s",
          float_field sp.end_fields "analyze_s",
          float_field sp.end_fields "restart_s" )
      with
      | Some p, Some a, Some r ->
          [
            ("sat.propagate", p);
            ("sat.analyze", a);
            ("sat.restart", r);
            ("sat.other", Float.max 0.0 (sp.self -. p -. a -. r));
          ]
      | _ -> [ ("sat.solve", sp.self) ])
  | "ctx.check" -> [ ("smtlite.encode", sp.self) ]
  | "cegis.iteration" -> [ ("cegis.loop", sp.self) ]
  | "portfolio.worker" -> [ ("portfolio.idle", sp.self) ]
  | name -> [ (name, sp.self) ]

let report ?(top = 3) (p : parsed) =
  let sps = spans p in
  let phase_tbl : (string, float * int) Hashtbl.t = Hashtbl.create 16 in
  let add_phase name s count =
    let t, c = Option.value (Hashtbl.find_opt phase_tbl name) ~default:(0.0, 0) in
    Hashtbl.replace phase_tbl name (t +. s, c + count)
  in
  List.iter
    (fun sp ->
      match phases_of_span sp with
      | [ (name, s) ] -> add_phase name s 1
      | parts -> List.iter (fun (name, s) -> add_phase name s 0) parts)
    sps;
  (* count sat.solve calls once for the split rows *)
  let solve_calls =
    List.length (List.filter (fun sp -> sp.name = "sat.solve") sps)
  in
  List.iter
    (fun n ->
      match Hashtbl.find_opt phase_tbl n with
      | Some (t, 0) -> Hashtbl.replace phase_tbl n (t, solve_calls)
      | _ -> ())
    [ "sat.propagate"; "sat.analyze"; "sat.restart"; "sat.other" ];
  let wall =
    match p.events with
    | [] -> 0.0
    | evs ->
        let ts = List.map event_ts evs in
        List.fold_left Float.max neg_infinity ts
        -. List.fold_left Float.min infinity ts
  in
  let busy =
    List.fold_left
      (fun acc sp -> if sp.parent = None then acc +. sp.dur else acc)
      0.0 sps
  in
  let unattributed = Float.max 0.0 (wall -. busy) in
  let attributed_pct =
    if wall <= 0.0 then 100.0 else 100.0 *. (wall -. unattributed) /. wall
  in
  let iterations =
    List.length (List.filter (fun sp -> sp.name = "cegis.iteration") sps)
  in
  let sat_totals =
    let keys = [ "decisions"; "propagations"; "conflicts"; "restarts" ] in
    List.map
      (fun k ->
        ( k,
          List.fold_left
            (fun acc sp ->
              if sp.name = "sat.solve" then
                acc + Option.value (int_field sp.end_fields k) ~default:0
              else acc)
            0 sps ))
      keys
  in
  let slowest =
    let iters =
      List.filter (fun sp -> sp.name = "cegis.iteration") sps
      |> List.sort (fun a b -> Float.compare b.dur a.dur)
    in
    let take n l =
      List.filteri (fun i _ -> i < n) l
    in
    List.map
      (fun sp ->
        let n = Option.value (int_field sp.begin_fields "iter") ~default:0 in
        let kids = Hashtbl.create 4 in
        List.iter
          (fun c ->
            if c.parent = Some sp.id then
              Hashtbl.replace kids c.name
                (c.dur
                +. Option.value (Hashtbl.find_opt kids c.name) ~default:0.0))
          sps;
        let kid_list =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) kids []
          |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
        in
        (n, sp.dur, kid_list))
      (take top iters)
  in
  {
    events = List.length p.events;
    wall_s = wall;
    busy_s = busy;
    unattributed_s = unattributed;
    attributed_pct;
    iterations;
    phases =
      Hashtbl.fold (fun name (t, c) acc -> { phase = name; total_s = t; calls = c } :: acc)
        phase_tbl []
      |> List.sort (fun a b ->
             match Float.compare b.total_s a.total_s with
             | 0 -> String.compare a.phase b.phase
             | c -> c);
    sat_totals;
    slowest;
  }

(* ---------- folded flamegraph stacks ---------- *)

(* One line per distinct span-name stack, "root;child;leaf <self µs>",
   the folded-stack format consumed by flamegraph.pl and speedscope.
   Output is sorted by stack for determinism.

   Runtime-lens GC pause points ([runtime.gc.minor]/[runtime.gc.major],
   each carrying [dur_s]) fold in as leaf frames under the innermost
   span covering their timestamp, with the pause microseconds moved out
   of that span's self-time — so a GC-bound phase shows its GC share as
   a distinct frame instead of inflating the phase itself.  Pauses
   landing outside any span become root-level GC frames. *)
let flame (p : parsed) =
  let sps = spans p in
  let by_id = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.id sp) sps;
  let rec stack sp =
    match sp.parent with
    | Some pid when Hashtbl.mem by_id pid ->
        stack (Hashtbl.find by_id pid) ^ ";" ^ sp.name
    | _ -> sp.name
  in
  let folded : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let add key us =
    Hashtbl.replace folded key
      (us + Option.value (Hashtbl.find_opt folded key) ~default:0)
  in
  (* µs of GC pause charged to each span, to deduct from its self-time *)
  let gc_in_span : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | Sink.Point
          { ts; name = ("runtime.gc.minor" | "runtime.gc.major") as name;
            fields } -> (
          let dur = Option.value (float_field fields "dur_s") ~default:0.0 in
          let us = int_of_float ((dur *. 1e6) +. 0.5) in
          if us > 0 then
            let innermost =
              List.fold_left
                (fun acc sp ->
                  if sp.t0 <= ts && ts <= sp.t0 +. sp.dur then
                    match acc with
                    | None -> Some sp
                    | Some best ->
                        if
                          sp.t0 > best.t0
                          || (sp.t0 = best.t0 && sp.dur < best.dur)
                        then Some sp
                        else acc
                  else acc)
                None sps
            in
            match innermost with
            | Some sp ->
                add (stack sp ^ ";" ^ name) us;
                Hashtbl.replace gc_in_span sp.id
                  (us
                  + Option.value (Hashtbl.find_opt gc_in_span sp.id) ~default:0)
            | None -> add name us)
      | _ -> ())
    p.events;
  List.iter
    (fun sp ->
      let us = int_of_float ((sp.self *. 1e6) +. 0.5) in
      let gc = Option.value (Hashtbl.find_opt gc_in_span sp.id) ~default:0 in
      add (stack sp) (max 0 (us - gc)))
    sps;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) folded []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let flame_to_string p =
  String.concat ""
    (List.map (fun (stack, us) -> Printf.sprintf "%s %d\n" stack us) (flame p))

(* ---------- metric extraction and diffing ---------- *)

type source = Trace | Bench

let source_name = function Trace -> "trace" | Bench -> "bench"

let metrics_of_trace (p : parsed) =
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let bump k v = Hashtbl.replace tbl k (v +. Option.value (Hashtbl.find_opt tbl k) ~default:0.0) in
  List.iter
    (fun ev ->
      match ev with
      | Sink.Span_end { name; dur; _ } ->
          bump ("span." ^ name ^ ".total_s") dur;
          bump ("span." ^ name ^ ".count") 1.0
      | Sink.Counter { name; value; _ } ->
          bump ("counter." ^ name) (float_of_int value)
      | Sink.Point { name; _ } -> bump ("event." ^ name) 1.0
      | Sink.Span_begin _ | Sink.Gauge _ -> ())
    p.events;
  (match p.events with
  | [] -> ()
  | evs ->
      let ts = List.map event_ts evs in
      Hashtbl.replace tbl "wall_s"
        (List.fold_left Float.max neg_infinity ts
        -. List.fold_left Float.min infinity ts));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* BENCH_*.json as written by bench/main.exe:
   {"pr":...,"scale":...,"instances":[{"experiment","instance","wall_s",
   "iterations","conflicts"}...]} *)
let metrics_of_bench j =
  match Json.member "instances" j with
  | Some (Json.List instances) ->
      let row acc inst =
        match acc with
        | Error _ -> acc
        | Ok rows -> (
            let str k = Option.bind (Json.member k inst) Json.to_string_opt in
            match (str "experiment", str "instance") with
            | Some e, Some i ->
                let base = e ^ "/" ^ i ^ "/" in
                let num k =
                  Option.bind (Json.member k inst) Json.to_float
                  |> Option.map (fun v -> (base ^ k, v))
                in
                Ok
                  (List.filter_map num [ "wall_s"; "iterations"; "conflicts" ]
                  @ rows)
            | _ -> Error "bench instance missing experiment/instance")
      in
      Result.map
        (List.sort (fun (a, _) (b, _) -> String.compare a b))
        (List.fold_left row (Ok []) instances)
  | _ -> Error "not a bench file: no \"instances\" array"

(* Auto-detect the file flavor: a single JSON object with an "instances"
   array is a bench file, otherwise the content must parse as an NDJSON
   trace. *)
let metrics_of_string content =
  let as_bench =
    match Json.of_string (String.trim content) with
    | j -> Some (metrics_of_bench j)
    | exception Json.Parse_error _ -> None
  in
  match as_bench with
  | Some (Ok rows) -> Ok (rows, Bench)
  | _ -> (
      match of_string content with
      | Ok p -> Ok (metrics_of_trace p, Trace)
      | Error e -> Error ("neither bench json nor ndjson trace: " ^ e))

type delta = { key : string; va : float; vb : float; pct : float }

type diff = {
  shared : int;
  only_a : int;
  only_b : int;
  added : string list; (* present only in b, sorted *)
  removed : string list; (* present only in a, sorted *)
  regressions : delta list; (* pct > threshold, worst first *)
  improvements : delta list; (* pct < -threshold, best first *)
}

(* ---------- request slicing (daemon traces) ---------- *)

(* A daemon trace interleaves many requests across worker domains; the
   ambient span context stamps each event with its request id, so one
   submit can be sliced back out and its wall time attributed end to end:
   queue wait (admission point to first span), then per-phase span
   self-times.  Spans still open at the end of the slice — a stalled
   sat.solve in a flight-recorder postmortem — are extended to the
   slice's last timestamp, so a reaped request's stall is attributed to
   the phase it was stuck in rather than vanishing. *)

type request_phase = { rq_phase : string; rq_total_s : float; rq_calls : int }

type request_report = {
  rq_id : string;
  rq_events : int;
  rq_wall_s : float;
  rq_queue_wait_s : float;
  rq_open_spans : int;
  rq_phases : request_phase list; (* sorted by total_s, descending *)
  rq_attributed_s : float;
  rq_attributed_pct : float;
}

let request_of_fields fields =
  match List.assoc_opt "request" fields with
  | Some (Sink.Str id) -> Some id
  | _ -> None

(* request ids present in the trace, busiest first *)
let request_ids (p : parsed) =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match request_of_fields (event_fields ev) with
      | Some id ->
          Hashtbl.replace tbl id
            (1 + Option.value (Hashtbl.find_opt tbl id) ~default:0)
      | None -> ())
    p.events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, ca) (b, cb) ->
         match compare cb ca with 0 -> String.compare a b | c -> c)

let request_report ~request (p : parsed) =
  let evs =
    List.filter
      (fun ev -> request_of_fields (event_fields ev) = Some request)
      p.events
  in
  match evs with
  | [] -> None
  | _ ->
      let ts_list = List.map event_ts evs in
      let t0 = List.fold_left Float.min infinity ts_list in
      let t_end = List.fold_left Float.max neg_infinity ts_list in
      let wall = Float.max 0.0 (t_end -. t0) in
      (* spans within the slice; unmatched begins stay open *)
      let begins = Hashtbl.create 32 in
      let completed = ref [] in
      List.iter
        (fun ev ->
          match ev with
          | Sink.Span_begin { ts; id; parent; name; fields } ->
              Hashtbl.replace begins id (ts, parent, name, fields)
          | Sink.Span_end { id; dur; fields; _ } -> (
              match Hashtbl.find_opt begins id with
              | None -> ()
              | Some (bts, parent, name, begin_fields) ->
                  Hashtbl.remove begins id;
                  completed :=
                    {
                      id;
                      name;
                      parent;
                      t0 = bts;
                      dur;
                      self = 0.0;
                      begin_fields;
                      end_fields = fields;
                    }
                    :: !completed)
          | _ -> ())
        evs;
      let open_spans =
        Hashtbl.fold
          (fun id (bts, parent, name, begin_fields) acc ->
            {
              id;
              name;
              parent;
              t0 = bts;
              dur = Float.max 0.0 (t_end -. bts);
              self = 0.0;
              begin_fields;
              end_fields = [];
            }
            :: acc)
          begins []
      in
      let all = List.rev !completed @ open_spans in
      let child_time : (int, float) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun sp ->
          match sp.parent with
          | Some pid ->
              Hashtbl.replace child_time pid
                (sp.dur
                +. Option.value (Hashtbl.find_opt child_time pid) ~default:0.0)
          | None -> ())
        all;
      let all =
        List.map
          (fun sp ->
            {
              sp with
              self =
                Float.max 0.0
                  (sp.dur
                  -. Option.value (Hashtbl.find_opt child_time sp.id)
                       ~default:0.0);
            })
          all
      in
      let first_span_t0 =
        List.fold_left (fun acc sp -> Float.min acc sp.t0) infinity all
      in
      let queue_wait =
        if all = [] then 0.0 else Float.max 0.0 (first_span_t0 -. t0)
      in
      let phase_tbl : (string, float * int) Hashtbl.t = Hashtbl.create 16 in
      let add_phase name s count =
        let t, c =
          Option.value (Hashtbl.find_opt phase_tbl name) ~default:(0.0, 0)
        in
        Hashtbl.replace phase_tbl name (t +. s, c + count)
      in
      List.iter
        (fun sp ->
          match phases_of_span sp with
          | [ (name, s) ] -> add_phase name s 1
          | parts -> List.iter (fun (name, s) -> add_phase name s 0) parts)
        all;
      if queue_wait > 0.0 then add_phase "queue.wait" queue_wait 1;
      (* attribution = fraction of the slice's wall covered by queue wait
         plus root spans, as an interval union: per-phase self-times can
         legitimately overlap across concurrent worker domains (roots on
         different domains have no parent edge), so summing them would
         overcount *)
      let ids = Hashtbl.create 32 in
      List.iter (fun sp -> Hashtbl.replace ids sp.id ()) all;
      let intervals =
        (if queue_wait > 0.0 then [ (t0, first_span_t0) ] else [])
        @ List.filter_map
            (fun sp ->
              let root =
                match sp.parent with
                | None -> true
                | Some pid -> not (Hashtbl.mem ids pid)
              in
              if root then Some (sp.t0, sp.t0 +. sp.dur) else None)
            all
      in
      let covered =
        let sorted =
          List.sort (fun (a, _) (b, _) -> Float.compare a b) intervals
        in
        let rec go acc cur = function
          | [] -> (
              match cur with None -> acc | Some (s, e) -> acc +. (e -. s))
          | (s, e) :: rest -> (
              match cur with
              | None -> go acc (Some (s, e)) rest
              | Some (cs, ce) ->
                  if s <= ce then go acc (Some (cs, Float.max ce e)) rest
                  else go (acc +. (ce -. cs)) (Some (s, e)) rest)
        in
        go 0.0 None sorted
      in
      let attributed = Float.min wall covered in
      Some
        {
          rq_id = request;
          rq_events = List.length evs;
          rq_wall_s = wall;
          rq_queue_wait_s = queue_wait;
          rq_open_spans = List.length open_spans;
          rq_phases =
            Hashtbl.fold
              (fun name (t, c) acc ->
                { rq_phase = name; rq_total_s = t; rq_calls = c } :: acc)
              phase_tbl []
            |> List.sort (fun a b ->
                   match Float.compare b.rq_total_s a.rq_total_s with
                   | 0 -> String.compare a.rq_phase b.rq_phase
                   | c -> c);
          rq_attributed_s = attributed;
          rq_attributed_pct =
            (if wall <= 0.0 then 100.0 else 100.0 *. attributed /. wall);
        }

(* ---------- runtime lens section (trace report) ---------- *)

(* Aggregate the runtime lens's [runtime.gc] interval points into a
   per-domain mutator/GC/wait split.  Each point covers the interval
   since the previous one on its domain ([interval_s]), so summing them
   tiles that domain's observed wall time; mutator time is the
   remainder after GC and condition-wait.  With [request], only points
   tagged with that id count — the per-request view of a daemon trace. *)

type runtime_domain = {
  rt_domain : int;
  rt_covered_s : float;  (* summed interval_s: observed wall on this domain *)
  rt_minor_s : float;
  rt_major_s : float;
  rt_wait_s : float;
  rt_mutator_s : float;  (* covered minus GC minus wait *)
  rt_minor_n : int;
  rt_major_n : int;
  rt_alloc_words : int;
}

type runtime_section = {
  rt_domains : runtime_domain list;  (* sorted by domain index *)
  rt_gc_s : float;  (* minor + major over all domains *)
  rt_total_mutator_s : float;
  rt_total_wait_s : float;
  rt_pauses : int;  (* over-threshold pause points in the slice *)
  rt_max_pause_s : float;
  rt_covered_pct : float;
      (* best per-domain coverage against the slice's wall clock: how
         much of the run the lens actually observed and attributed *)
}

let runtime ?request (p : parsed) =
  let keep ev =
    match request with
    | None -> true
    | Some r -> request_of_fields (event_fields ev) = Some r
  in
  let evs = List.filter keep p.events in
  let wall =
    match evs with
    | [] -> 0.0
    | _ ->
        let ts = List.map event_ts evs in
        Float.max 0.0
          (List.fold_left Float.max neg_infinity ts
          -. List.fold_left Float.min infinity ts)
  in
  let tbl : (int, runtime_domain) Hashtbl.t = Hashtbl.create 8 in
  let pauses = ref 0 in
  let max_pause = ref 0.0 in
  List.iter
    (fun ev ->
      match ev with
      | Sink.Point { name = "runtime.gc"; fields; _ } ->
          let f k = Option.value (float_field fields k) ~default:0.0 in
          let i k = Option.value (int_field fields k) ~default:0 in
          let d = i "domain" in
          let prev =
            Option.value (Hashtbl.find_opt tbl d)
              ~default:
                {
                  rt_domain = d;
                  rt_covered_s = 0.0;
                  rt_minor_s = 0.0;
                  rt_major_s = 0.0;
                  rt_wait_s = 0.0;
                  rt_mutator_s = 0.0;
                  rt_minor_n = 0;
                  rt_major_n = 0;
                  rt_alloc_words = 0;
                }
          in
          Hashtbl.replace tbl d
            {
              prev with
              rt_covered_s = prev.rt_covered_s +. f "interval_s";
              rt_minor_s = prev.rt_minor_s +. f "minor_s";
              rt_major_s = prev.rt_major_s +. f "major_s";
              rt_wait_s = prev.rt_wait_s +. f "wait_s";
              rt_minor_n = prev.rt_minor_n + i "minor_n";
              rt_major_n = prev.rt_major_n + i "major_n";
              rt_alloc_words = prev.rt_alloc_words + i "alloc_words";
            }
      | Sink.Point
          { name = "runtime.gc.minor" | "runtime.gc.major"; fields; _ } ->
          incr pauses;
          let d = Option.value (float_field fields "dur_s") ~default:0.0 in
          if d > !max_pause then max_pause := d
      | _ -> ())
    evs;
  if Hashtbl.length tbl = 0 && !pauses = 0 then None
  else
    let domains =
      Hashtbl.fold (fun _ rd acc -> rd :: acc) tbl []
      |> List.map (fun rd ->
             {
               rd with
               rt_mutator_s =
                 Float.max 0.0
                   (rd.rt_covered_s -. rd.rt_minor_s -. rd.rt_major_s
                  -. rd.rt_wait_s);
             })
      |> List.sort (fun a b -> compare a.rt_domain b.rt_domain)
    in
    let sum f = List.fold_left (fun acc rd -> acc +. f rd) 0.0 domains in
    let best_covered =
      List.fold_left (fun acc rd -> Float.max acc rd.rt_covered_s) 0.0 domains
    in
    Some
      {
        rt_domains = domains;
        rt_gc_s = sum (fun rd -> rd.rt_minor_s +. rd.rt_major_s);
        rt_total_mutator_s = sum (fun rd -> rd.rt_mutator_s);
        rt_total_wait_s = sum (fun rd -> rd.rt_wait_s);
        rt_pauses = !pauses;
        rt_max_pause_s = !max_pause;
        rt_covered_pct =
          (if wall <= 0.0 then 100.0
           else Float.min 100.0 (100.0 *. best_covered /. wall));
      }

let diff ~threshold a b =
  let tbl_a = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl_a k v) a;
  let shared = ref 0 and added = ref [] in
  let deltas =
    List.filter_map
      (fun (k, vb) ->
        match Hashtbl.find_opt tbl_a k with
        | None ->
            added := k :: !added;
            None
        | Some va ->
            incr shared;
            Hashtbl.remove tbl_a k;
            let pct =
              if va = 0.0 && vb = 0.0 then 0.0
              else if va = 0.0 then infinity
              else (vb -. va) /. va *. 100.0
            in
            Some { key = k; va; vb; pct })
      b
  in
  let removed =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl_a [])
  in
  let added = List.sort String.compare !added in
  {
    shared = !shared;
    only_a = List.length removed;
    only_b = List.length added;
    added;
    removed;
    regressions =
      List.filter (fun d -> d.pct > threshold) deltas
      |> List.sort (fun x y -> Float.compare y.pct x.pct);
    improvements =
      List.filter (fun d -> d.pct < -.threshold) deltas
      |> List.sort (fun x y -> Float.compare x.pct y.pct);
  }
