(** Persistent cross-run history: the append-only NDJSON ledger behind
    the [fecsynth runs] family.

    Every synth/optimize/bench invocation appends one compact, versioned
    record — UTC timestamp (supplied by the caller), build info, CLI
    config, stats, outcome, key metrics, wall time, exit status — to
    [<dir>/runs.ndjson].  Appends are a single [O_APPEND] write of one
    complete line (atomic for whole records under concurrent writers on
    local filesystems); whole-file artifacts elsewhere in the stack keep
    the tmp+rename discipline.  The reader tolerates a truncated
    non-newline-terminated tail like {!Analyze.of_string}, rejects
    malformed newline-terminated lines, and skips-but-counts records
    written by a {e newer} format version. *)

(** The record format version this build writes (and the newest it can
    read). *)
val format_version : int

type entry = {
  version : int;
  ts : string;  (** caller-supplied UTC timestamp, ISO-8601 with [Z] *)
  subcommand : string;
  problem : string;  (** the spec / code descriptor / experiment list *)
  outcome : string;
      (** ["synthesized"], ["partial"], ["timeout"], ["unsat"],
          ["interrupted"], ["verified"], ["refuted"], ["ok"], ["error"],
          ["crash"], ... — failures are first-class data *)
  exit_code : int;
  cache_hit : bool;
      (** the run was answered from the session result cache; serialized
          only when [true], so pre-cache records and readers round-trip
          unchanged *)
  wall_s : float;
  build : Buildinfo.t;
  config : (string * string) list;
  metrics : (string * float) list;
      (** flat numeric facts; always includes [wall_s] for trends *)
  stats : Json.t option;  (** the full structured stats object *)
}

(** [utc_timestamp ?at ()] renders [at] (default: now) as
    [YYYY-MM-DDTHH:MM:SSZ]. *)
val utc_timestamp : ?at:float -> unit -> string

val to_json : entry -> Json.t

type reject = [ `Future of int | `Malformed of string ]

(** Decode one record; [`Future v] for records written by format version
    [v > format_version]. *)
val of_json : Json.t -> (entry, reject) result

(** One compact NDJSON line, no trailing newline. *)
val render : entry -> string

(** {1 Reading} *)

type loaded = {
  entries : entry list;  (** in append order, oldest first *)
  truncated : bool;
      (** the final line had no newline terminator and did not decode —
          an interrupted append, tolerated by dropping it *)
  skipped_future : int;  (** records from a newer format version *)
}

(** [of_string content] parses ledger file content; [Error "line N: ..."]
    on a malformed newline-terminated line. *)
val of_string : string -> (loaded, string) result

(** [load ~dir] reads [<dir>/runs.ndjson]; a missing file is an empty
    ledger, not an error. *)
val load : dir:string -> (loaded, string) result

(** {1 Writing} *)

(** [$FEC_LEDGER_DIR] when set and non-empty, else [.fecsynth/ledger]. *)
val default_dir : unit -> string

(** [file ~dir] is [<dir>/runs.ndjson]. *)
val file : dir:string -> string

(** [append ~dir e] creates [dir] as needed and appends one line.
    @raise Failure (or a [Unix.Unix_error]) on I/O failure. *)
val append : dir:string -> entry -> unit

(** [repair_tail ~dir] truncates a torn (non-newline-terminated) final
    line left by a crash mid-append, so the next append cannot glue a
    fresh record onto it and corrupt the file.  Returns [true] iff
    something was truncated.  A missing file is a no-op. *)
val repair_tail : dir:string -> bool

(** [scavenge ~dir] is the crash-safe-restart sweep: repairs the torn
    tail, then recovers the in-flight journal — every {!start} writes a
    would-be ["crash"] record under [<dir>/inflight/] and {!finish}
    removes it, so a journal file whose owning pid is dead marks a run
    killed mid-flight (SIGKILL, power loss).  Each such record is
    appended to the ledger as a first-class ["crash"] entry and its
    journal deleted.  Returns [(recovered, tail_repaired)]. *)
val scavenge : dir:string -> int * bool

(** A run being recorded: {!start} captures the wall clock and identity
    up front, {!finish} appends exactly one record.  The CLI keeps one
    pending record per process and finishes it with ["crash"] from an
    [at_exit] hook when no explicit outcome was recorded. *)
type pending

val start :
  ?dir:string ->
  ts:string ->
  subcommand:string ->
  problem:string ->
  config:(string * string) list ->
  build:Buildinfo.t ->
  unit ->
  pending

(** Idempotent: only the first [finish] appends.  [wall_s] is measured
    from {!start} and prepended to [metrics].  A ledger I/O failure is
    reported as a warning on stderr, never raised — history must not
    break the command it records. *)
val finish :
  ?stats:Json.t ->
  ?metrics:(string * float) list ->
  ?cache_hit:bool ->
  pending ->
  outcome:string ->
  exit_code:int ->
  unit

(** {1 Trend analytics ([fecsynth runs trend])} *)

(** Nearest-rank quantile (rank [⌈q·N⌉]) over a float list, consistent
    with {!Metrics.Hist.quantile}; [None] on an empty list. *)
val quantile : float list -> float -> float option

type series = {
  s_cmd : string;
  s_problem : string;
  s_metric : string;
  points : (string * float) list;  (** [(ts, value)], oldest first *)
}

(** Per-(subcommand, problem, metric-key) series over the entries, in
    first-appearance order.  [metric] matches by substring; [subcommand]
    filters exactly, [problem] by substring. *)
val series :
  ?subcommand:string ->
  ?problem:string ->
  metric:string ->
  entry list ->
  series list

type trend = {
  t_series : series;
  n : int;
  last : float;
  p50 : float;
  p95 : float;
  lo : float;
  hi : float;
  pct_vs_baseline : float option;
      (** latest point vs the median of all prior points, in percent
          ([infinity] when a zero baseline grows — the {!Analyze.diff}
          convention); [None] with fewer than two points *)
  regression : bool;  (** [pct_vs_baseline > threshold] *)
}

(** @raise Invalid_argument on an empty series (never produced by
    {!series}). *)
val trend : threshold:float -> series -> trend
