(** In-memory flight recorder: bounded per-domain rings of the most
    recent telemetry events, dumped to a postmortem NDJSON file when a
    stuck worker is reaped or a crash record is journaled.

    Disabled (the default) costs one atomic load per {!record} and
    allocates nothing — the same guard discipline as the telemetry
    sink.  Enabled, each domain records into its own preallocated ring
    (single writer, no locks on the hot path); {!dump} reads the rings
    racily, which can blur which events made the cut but never tears an
    event. *)

(** [enable ~capacity ~dir ()] turns recording on: each domain keeps its
    last [capacity] events (default 512), and postmortems are written
    into [dir] as [postmortem-<pid>-<seq>.ndjson]. *)
val enable : ?capacity:int -> dir:string -> unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [record ev] appends [ev] to the calling domain's ring; no-op when
    disabled. *)
val record : Sink.event -> unit

(** [sink ()] wraps {!record} as a sink, for inclusion in a tee. *)
val sink : unit -> Sink.t

(** [snapshot ()] is the current contents of every ring, merged and
    sorted by timestamp; [[]] when disabled. *)
val snapshot : unit -> Sink.event list

(** [dump ~reason ?fields ()] writes the snapshot plus a trailing
    [flight.dump] point (carrying [reason] and [fields], e.g. the
    reaped request id) as an NDJSON postmortem, tmp+rename atomic.
    Returns the path, or [None] when disabled or the write failed —
    postmortems are best-effort diagnostics and must never take the
    daemon down. *)
val dump : ?fields:Sink.fields -> reason:string -> unit -> string option
