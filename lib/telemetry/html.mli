(** The self-contained HTML dashboard behind [fecsynth runs html].

    One hand-rolled file (in the spirit of {!Json}): inline CSS with
    light/dark palettes, inline SVG sparklines and stacked bars, native
    [<title>] tooltips — zero scripts, zero external assets, zero
    network requests. *)

(** Render the dashboard over the ledger entries (oldest first, as
    {!Ledger.load} returns them). *)
val render : Ledger.entry list -> string

(** Structural check used by the test suite and [make check]: balanced
    tags (modulo void elements and comments) and no external references
    ([http://], [https://], [src=], [url(], [@import]). *)
val well_formed : string -> (unit, string) result
