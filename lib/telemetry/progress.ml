(* A live single-line progress display implemented as a sink: it folds
   the same event stream every other sink sees into a tiny state machine
   and re-renders a carriage-return-terminated status line, throttled so
   rendering cost stays negligible next to solving.  The CLI only
   installs it when stderr is a TTY; composed with an NDJSON trace via
   [Sink.tee]. *)

type state = {
  mutable started : float;
  mutable iterations : int;
  mutable cexes : int;
  mutable best : int option; (* best candidate distance bound seen *)
  mutable target : int option; (* the spec's min_distance *)
  mutable pool : int option; (* shared-pool size (portfolio gauge) *)
  mutable running : string list; (* workers with an open span *)
  mutable workers_done : int;
  mutable restarts : int; (* SAT restarts, summed over solve calls *)
  mutable crashes : int;
  mutable rounds : int;
  mutable opt_step : string option; (* last optimize.step, rendered *)
  mutable last_render : float;
  mutable last_width : int;
}

let int_field fields key =
  match List.assoc_opt key fields with
  | Some (Sink.Int n) -> Some n
  | _ -> None

let str_field fields key =
  match List.assoc_opt key fields with
  | Some (Sink.Str s) -> Some s
  | _ -> None

let absorb st ev =
  match ev with
  | Sink.Point { name = "cegis.session"; fields; _ } ->
      st.target <- int_field fields "min_distance"
  | Sink.Span_end { name = "cegis.iteration"; _ } ->
      st.iterations <- st.iterations + 1
  | Sink.Span_end { name = "cegis.verify"; fields; _ } ->
      if str_field fields "verdict" = Some "cex" then begin
        st.cexes <- st.cexes + 1;
        match int_field fields "cand_weight" with
        | Some w when (match st.best with Some b -> w > b | None -> true) ->
            st.best <- Some w
        | _ -> ()
      end
  | Sink.Span_end { name = "sat.solve"; fields; _ } ->
      st.restarts <- st.restarts + Option.value (int_field fields "restarts") ~default:0
  | Sink.Gauge { name = "portfolio.pool_size"; value; _ } ->
      st.pool <- Some (int_of_float value)
  | Sink.Span_begin { name = "portfolio.worker"; fields; _ } -> (
      match str_field fields "worker" with
      | Some w -> st.running <- w :: List.filter (fun x -> x <> w) st.running
      | None -> ())
  | Sink.Span_end { name = "portfolio.worker"; fields; _ } -> (
      st.workers_done <- st.workers_done + 1;
      match str_field fields "worker" with
      | Some w -> st.running <- List.filter (fun x -> x <> w) st.running
      | None -> ())
  | Sink.Point { name = "portfolio.round"; _ } -> st.rounds <- st.rounds + 1
  | Sink.Point { name = "supervisor.crash"; _ } ->
      st.crashes <- st.crashes + 1
  | Sink.Point { name = "optimize.step"; fields; _ } ->
      st.opt_step <-
        Some
          (Printf.sprintf "%s %s=%s"
             (Option.value (str_field fields "outcome") ~default:"?")
             (Option.value (str_field fields "walk") ~default:"step")
             (match int_field fields "param" with
             | Some p -> string_of_int p
             | None -> "?"))
  | _ -> ()

let render st =
  let elapsed = State.now () -. st.started in
  let segs = ref [] in
  let add s = segs := s :: !segs in
  add
    (Printf.sprintf "it %d (%.1f/s)" st.iterations
       (if elapsed > 0.0 then float_of_int st.iterations /. elapsed else 0.0));
  (match (st.pool, st.cexes) with
  | Some p, _ -> add (Printf.sprintf "pool %d" p)
  | None, c when c > 0 -> add (Printf.sprintf "cex %d" c)
  | _ -> ());
  (match (st.best, st.target) with
  | Some b, Some t -> add (Printf.sprintf "best %d/%d" b t)
  | Some b, None -> add (Printf.sprintf "best %d" b)
  | None, _ -> ());
  (match st.opt_step with Some s -> add s | None -> ());
  if st.running <> [] || st.workers_done > 0 then
    add
      (Printf.sprintf "workers %d run/%d done" (List.length st.running)
         st.workers_done);
  if st.rounds > 0 then add (Printf.sprintf "round %d" st.rounds);
  if st.restarts > 0 then add (Printf.sprintf "restarts %d" st.restarts);
  if st.crashes > 0 then add (Printf.sprintf "crashes %d" st.crashes);
  add (Printf.sprintf "%.1fs" elapsed);
  Printf.sprintf "[%s]" (String.concat " | " (List.rev !segs))

let sink ?(min_interval = 0.1) ?(final = false) write =
  let st =
    {
      started = State.now ();
      iterations = 0;
      cexes = 0;
      best = None;
      target = None;
      pool = None;
      running = [];
      workers_done = 0;
      restarts = 0;
      crashes = 0;
      rounds = 0;
      opt_step = None;
      last_render = neg_infinity;
      last_width = 0;
    }
  in
  let mutex = Mutex.create () in
  let draw () =
    let line = render st in
    (* pad over the previous line's leftovers *)
    let pad = max 0 (st.last_width - String.length line) in
    st.last_width <- String.length line;
    write ("\r" ^ line ^ String.make pad ' ')
  in
  {
    Sink.emit =
      (fun ev ->
        Mutex.protect mutex (fun () ->
            absorb st ev;
            let now = State.now () in
            if now -. st.last_render >= min_interval then begin
              st.last_render <- now;
              draw ()
            end));
    flush =
      (fun () ->
        Mutex.protect mutex (fun () ->
            if final then begin
              (* leave the final state on its own line — the mode used
                 under FEC_FORCE_TTY so tests can assert its shape *)
              draw ();
              st.last_width <- 0;
              write "\n"
            end
            else if st.last_width > 0 then
              (* erase the line: final results go through normal output *)
              write ("\r" ^ String.make st.last_width ' ' ^ "\r")));
  }
