(** Zero-dependency structured tracing and metrics.

    One process-global sink (default: none) receives {!Sink.event}s from
    instrumented code.  The cardinal design constraint is
    {e overhead-when-disabled}: every instrumentation entry point first
    performs a single atomic load ({!enabled}) and returns immediately when
    no sink is installed, so hot paths (the SAT solver, the CEGIS loop) can
    stay instrumented unconditionally.  Field lists are only constructed
    after that check when call sites use the [if enabled] idiom or the
    closure-based {!span}.

    Spans nest: each domain keeps its own current-span stack (domain-local
    storage), so concurrent portfolio workers get correct parent edges
    without cross-domain interference.  Events may interleave arbitrarily
    across domains in sink order; ids are process-unique. *)

module Json = Json
module Sink = Sink

(** Typed counters/gauges/histograms with Prometheus exposition; updates
    are gated on the same {!enabled} probe. *)
module Metrics = Metrics

(** In-memory flight recorder: bounded per-domain rings of recent events,
    dumped as a postmortem NDJSON tail when a worker is reaped or a crash
    record is journaled.  Same single-atomic-load guard when disabled. *)
module Flight = Flight

(** Runtime-observability lens over OCaml's [Runtime_events] ring:
    GC-pause histograms, allocation counters and per-domain utilization
    gauges in the metrics registry, plus [runtime.*] trace points (with
    request correlation) through the installed sink.  Same
    single-atomic-load guard when the lens is not started. *)
module Runtime = Runtime

(** Offline NDJSON trace analytics: validation, per-phase wall-time
    attribution, folded flamegraph stacks, and trace/bench diffing. *)
module Analyze = Analyze

(** Live single-line TTY progress rendering, fed by events. *)
module Progress = Progress

(** Build identity (version, git describe, compiler, features) shared by
    [fecsynth version] and every run-ledger entry. *)
module Buildinfo = Buildinfo

(** Persistent cross-run history: the append-only NDJSON ledger behind
    the [fecsynth runs] family, plus its trend analytics. *)
module Ledger = Ledger

(** The self-contained HTML dashboard over the run ledger. *)
module Html = Html

(** {1 Sink installation} *)

(** [set_sink (Some s)] routes all subsequent events to [s];
    [set_sink None] disables telemetry (the default). *)
val set_sink : Sink.t option -> unit

val current_sink : unit -> Sink.t option

(** [enabled ()] is [true] iff a sink is installed — the single-load fast
    path guard. *)
val enabled : unit -> bool

(** [with_sink s f] installs [s] around [f ()], restores the previous sink
    afterwards (also on exception), and flushes [s]. *)
val with_sink : Sink.t -> (unit -> 'a) -> 'a

(** {1 Field construction shorthands} *)

val int : int -> Sink.value
val float : float -> Sink.value
val str : string -> Sink.value
val bool : bool -> Sink.value

(** {1 Instrumentation points} *)

(** [now ()] is seconds since the telemetry epoch (process start). *)
val now : unit -> float

(** A span in progress.  When telemetry was disabled at {!begin_span} time
    the span is inert and {!end_span} is a no-op. *)
type span

val null_span : span

(** [begin_span ?fields name] opens a span, emits [Span_begin], and pushes
    it on this domain's span stack (becoming the parent of nested spans). *)
val begin_span : ?fields:Sink.fields -> string -> span

(** [end_span ?fields sp] pops and emits [Span_end] with the measured
    duration.  [fields] typically carry results computed inside the span
    (solver result, statistics deltas). *)
val end_span : ?fields:Sink.fields -> span -> unit

(** [span ?fields name f] wraps [f ()] in a span, ending it on any exit
    (including exceptions).  When disabled this is just [f ()]. *)
val span : ?fields:Sink.fields -> string -> (unit -> 'a) -> 'a

(** [counter ?fields name n] emits a counter increment of [n]. *)
val counter : ?fields:Sink.fields -> string -> int -> unit

(** [gauge ?fields name v] emits a point-in-time level. *)
val gauge : ?fields:Sink.fields -> string -> float -> unit

(** [point ?fields name] emits an instantaneous event. *)
val point : ?fields:Sink.fields -> string -> unit

(** {1 Ambient span context}

    Request-scoped correlation for the serve daemon: fields installed
    with {!with_context} are stamped onto every event this domain emits
    (spans, counters, gauges, points), after the event's own fields so
    explicit fields win association lookups.  The context is
    domain-local and does {e not} cross [Domain.spawn] by itself —
    spawn sites capture {!current_context} in the parent and reinstall
    it inside the child (see [Synth.Portfolio]).  The disabled fast
    path is untouched: context is only consulted after {!enabled}. *)

(** [with_context fields f] runs [f ()] with [fields] prepended to this
    domain's ambient context, restoring the previous context on any
    exit. *)
val with_context : Sink.fields -> (unit -> 'a) -> 'a

(** [current_context ()] is this domain's ambient context, innermost
    first — capture it before [Domain.spawn] and reinstall it in the
    child. *)
val current_context : unit -> Sink.fields
