module Json = Json
module Sink = Sink
module Metrics = Metrics
module Flight = Flight
module Runtime = Runtime
module Analyze = Analyze
module Progress = Progress
module Buildinfo = Buildinfo
module Ledger = Ledger
module Html = Html

(* The shared epoch/sink state lives in [State] so that [Metrics] can use
   the same single-atomic-load guard without a module cycle. *)
let now = State.now
let state = State.state
let set_sink s = Atomic.set state s
let current_sink () = Atomic.get state
let enabled = State.enabled

let emit ev =
  match Atomic.get state with None -> () | Some s -> s.Sink.emit ev

let with_sink sink f =
  let prev = Atomic.get state in
  Atomic.set state (Some sink);
  Fun.protect
    ~finally:(fun () ->
      Atomic.set state prev;
      sink.Sink.flush ())
    f

let int n = Sink.Int n
let float f = Sink.Float f
let str s = Sink.Str s
let bool b = Sink.Bool b

(* ---------- ambient span context ---------- *)

(* Per-domain ambient fields (request correlation in the serve daemon)
   stamped onto every event emitted while installed.  The cell lives in
   domain-local storage and is only read on the enabled path, so the
   disabled fast path stays a single atomic load with no allocation.
   Context does not cross [Domain.spawn] by itself: spawn sites capture
   [current_context] in the parent and reinstall it in the child. *)
let context_key : Sink.fields ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current_context () = !(Domain.DLS.get context_key)

let with_context fields f =
  let cell = Domain.DLS.get context_key in
  let prev = !cell in
  cell := fields @ prev;
  Fun.protect ~finally:(fun () -> cell := prev) f

(* explicit fields first, so they win [List.assoc] lookups downstream *)
let stamp fields =
  match !(Domain.DLS.get context_key) with
  | [] -> fields
  | ctx -> fields @ ctx

(* ---------- spans ---------- *)

type span = { id : int; name : string; start : float; live : bool }

let null_span = { id = 0; name = ""; start = 0.0; live = false }
let next_id = Atomic.make 1

(* per-domain stack of open span ids, for parent attribution *)
let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let begin_span ?(fields = []) name =
  if not (enabled ()) then null_span
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    stack := id :: !stack;
    let ts = now () in
    emit (Sink.Span_begin { ts; id; parent; name; fields = stamp fields });
    { id; name; start = ts; live = true }
  end

let end_span ?(fields = []) sp =
  if sp.live then begin
    let stack = Domain.DLS.get stack_key in
    (* normally [sp] is the innermost open span; tolerate unbalanced
       nesting (an escaped exception ended an outer span first) by
       removing just this id *)
    (match !stack with
    | x :: rest when x = sp.id -> stack := rest
    | xs -> stack := List.filter (fun x -> x <> sp.id) xs);
    let ts = now () in
    emit
      (Sink.Span_end
         { ts; id = sp.id; name = sp.name; dur = ts -. sp.start;
           fields = stamp fields })
  end

let span ?fields name f =
  if not (enabled ()) then f ()
  else begin
    let sp = begin_span ?fields name in
    Fun.protect ~finally:(fun () -> end_span sp) f
  end

(* ---------- scalar events ---------- *)

let counter ?(fields = []) name value =
  if enabled () then
    emit (Sink.Counter { ts = now (); name; value; fields = stamp fields })

let gauge ?(fields = []) name value =
  if enabled () then
    emit (Sink.Gauge { ts = now (); name; value; fields = stamp fields })

let point ?(fields = []) name =
  if enabled () then
    emit (Sink.Point { ts = now (); name; fields = stamp fields })
