(* Persistent cross-run history: every synth/optimize/bench invocation
   appends one compact, versioned NDJSON record to a local ledger
   directory, and the [fecsynth runs] family reads it back for listing,
   diffing and trend detection.

   Durability discipline mirrors the rest of the stack, with one twist:
   whole-file artifacts (the HTML dashboard, checkpoints) use tmp+rename,
   but the ledger is an append-only log shared by concurrent processes —
   a rename would race and drop whole histories.  Appends are instead a
   single O_APPEND write of one complete line, which POSIX keeps atomic
   on local filesystems for these sizes, so two processes finishing at
   once interleave whole records, never bytes.  The reader tolerates a
   truncated non-newline-terminated tail exactly like {!Analyze} does
   (a crash mid-append loses only that record), errors on any malformed
   newline-terminated line, and skips-but-counts records whose format
   version is newer than this build understands. *)

let format_version = 1

type entry = {
  version : int;
  ts : string;  (* caller-supplied UTC timestamp, ISO-8601 Z *)
  subcommand : string;
  problem : string;
  outcome : string;
  exit_code : int;
  cache_hit : bool;  (* answered from the result cache, not a fresh run *)
  wall_s : float;
  build : Buildinfo.t;
  config : (string * string) list;
  metrics : (string * float) list;
  stats : Json.t option;
}

(* ---------- timestamps ---------- *)

let utc_timestamp ?at () =
  let t = match at with Some t -> t | None -> Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* ---------- record (de)serialization ---------- *)

let to_json e =
  Json.Obj
    ([
       ("v", Json.Int e.version);
       ("ts", Json.Str e.ts);
       ("cmd", Json.Str e.subcommand);
       ("problem", Json.Str e.problem);
       ("outcome", Json.Str e.outcome);
       ("exit", Json.Int e.exit_code);
     ]
    (* only emitted when true, so pre-cache records stay byte-identical
       and pre-cache readers (which ignore unknown keys) stay compatible *)
    @ (if e.cache_hit then [ ("cache_hit", Json.Bool true) ] else [])
    @ [
       ("wall_s", Json.Float e.wall_s);
       ("build", Buildinfo.to_json e.build);
       ("config", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.config));
       ( "metrics",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) e.metrics) );
     ]
    @ match e.stats with Some s -> [ ("stats", s) ] | None -> [])

type reject = [ `Future of int | `Malformed of string ]

let of_json j : (entry, reject) result =
  match Option.bind (Json.member "v" j) Json.to_int with
  | None -> Error (`Malformed "missing v")
  | Some v when v > format_version -> Error (`Future v)
  | Some v -> (
      let str k = Option.bind (Json.member k j) Json.to_string_opt in
      let num k = Option.bind (Json.member k j) Json.to_float in
      match (str "ts", str "cmd", str "outcome") with
      | Some ts, Some subcommand, Some outcome ->
          Ok
            {
              version = v;
              ts;
              subcommand;
              problem = Option.value (str "problem") ~default:"";
              outcome;
              exit_code =
                Option.value
                  (Option.bind (Json.member "exit" j) Json.to_int)
                  ~default:0;
              cache_hit =
                (match Json.member "cache_hit" j with
                | Some (Json.Bool b) -> b
                | _ -> false);
              wall_s = Option.value (num "wall_s") ~default:0.0;
              build =
                (match Json.member "build" j with
                | Some b -> Buildinfo.of_json b
                | None -> Buildinfo.of_json Json.Null);
              config =
                (match Json.member "config" j with
                | Some (Json.Obj kvs) ->
                    List.filter_map
                      (fun (k, v) ->
                        Option.map (fun s -> (k, s)) (Json.to_string_opt v))
                      kvs
                | _ -> []);
              metrics =
                (match Json.member "metrics" j with
                | Some (Json.Obj kvs) ->
                    List.filter_map
                      (fun (k, v) ->
                        Option.map (fun f -> (k, f)) (Json.to_float v))
                      kvs
                | _ -> []);
              stats = Json.member "stats" j;
            }
      | _ -> Error (`Malformed "missing ts/cmd/outcome"))

let render e = Json.to_string (to_json e)

(* ---------- reading ---------- *)

type loaded = { entries : entry list; truncated : bool; skipped_future : int }

let of_string content =
  let ends_with_newline =
    String.length content = 0 || content.[String.length content - 1] = '\n'
  in
  let lines =
    match List.rev (String.split_on_char '\n' content) with
    | "" :: rest -> List.rev rest
    | rest -> List.rev rest
  in
  let n_lines = List.length lines in
  let truncated = ref false and skipped = ref 0 in
  let rec go acc line_no = function
    | [] ->
        Ok
          {
            entries = List.rev acc;
            truncated = !truncated;
            skipped_future = !skipped;
          }
    | "" :: rest -> go acc (line_no + 1) rest
    | line :: rest -> (
        (* same damage model as Analyze.of_string: only a malformed final
           line with no newline terminator (an interrupted append) is
           tolerated; malformed mid-file lines are real corruption *)
        let malformed msg =
          if line_no = n_lines && not ends_with_newline then begin
            truncated := true;
            go acc (line_no + 1) rest
          end
          else Error (Printf.sprintf "line %d: %s" line_no msg)
        in
        match Json.of_string line with
        | exception Json.Parse_error msg -> malformed msg
        | j -> (
            match of_json j with
            | Ok e -> go (e :: acc) (line_no + 1) rest
            | Error (`Future _) ->
                incr skipped;
                go acc (line_no + 1) rest
            | Error (`Malformed msg) -> malformed msg))
  in
  go [] 1 lines

(* ---------- filesystem ---------- *)

let default_dir () =
  match Sys.getenv_opt "FEC_LEDGER_DIR" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat ".fecsynth" "ledger"

let file ~dir = Filename.concat dir "runs.ndjson"

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append ~dir e =
  mkdir_p dir;
  let line = render e ^ "\n" in
  let fd =
    Unix.openfile (file ~dir)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.of_string line in
      let n = Unix.write fd b 0 (Bytes.length b) in
      if n <> Bytes.length b then failwith "short ledger write")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~dir =
  let path = file ~dir in
  if not (Sys.file_exists path) then
    Ok { entries = []; truncated = false; skipped_future = 0 }
  else of_string (read_file path)

(* A SIGKILL mid-append leaves the file without a final newline.  The
   reader tolerates that, but the *next* append would glue its record to
   the torn tail and turn a tolerated truncation into mid-file garbage —
   so crash-safe restart truncates back to the last complete line
   first. *)
let repair_tail ~dir =
  let path = file ~dir in
  if not (Sys.file_exists path) then false
  else
    match read_file path with
    | exception Sys_error _ -> false
    | content ->
        let n = String.length content in
        if n = 0 || content.[n - 1] = '\n' then false
        else begin
          let keep =
            match String.rindex_opt content '\n' with
            | Some i -> i + 1
            | None -> 0
          in
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () -> Unix.ftruncate fd keep);
          true
        end

(* ---------- pending records (start / finish) ---------- *)

type pending = {
  p_dir : string;
  p_t0 : float;
  p_ts : string;
  p_cmd : string;
  p_problem : string;
  p_config : (string * string) list;
  p_build : Buildinfo.t;
  mutable p_recorded : bool;
  mutable p_journal : string option;  (* in-flight crash journal file *)
}

(* ---------- the in-flight journal ----------

   The at_exit crash hook covers uncaught exceptions, but a SIGKILL (or
   power loss) gives no exit path at all.  So every pending record also
   writes one small journal file — a complete would-be "crash" ledger
   line — under <dir>/inflight/, named <pid>.<seq>; finishing the record
   removes it.  {!scavenge}, run at daemon startup, appends any journal
   whose owning pid is dead to the ledger and deletes it: in-flight work
   of a killed process becomes first-class crash history on next start. *)

let journal_dir dir = Filename.concat dir "inflight"
let journal_seq = Atomic.make 0

let crash_entry p =
  {
    version = format_version;
    ts = p.p_ts;
    subcommand = p.p_cmd;
    problem = p.p_problem;
    outcome = "crash";
    exit_code = 2;
    cache_hit = false;
    wall_s = 0.0;
    build = p.p_build;
    config = p.p_config;
    metrics = [];
    stats = None;
  }

let journal_start p =
  try
    let dir = journal_dir p.p_dir in
    mkdir_p dir;
    let path =
      Filename.concat dir
        (Printf.sprintf "%d.%d" (Unix.getpid ())
           (Atomic.fetch_and_add journal_seq 1))
    in
    let oc = open_out_bin path in
    output_string oc (render (crash_entry p) ^ "\n");
    close_out oc;
    p.p_journal <- Some path
  with Sys_error _ | Unix.Unix_error _ -> ()

let journal_finish p =
  match p.p_journal with
  | None -> ()
  | Some path ->
      p.p_journal <- None;
      (try Sys.remove path with Sys_error _ -> ())

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) ->
      (* EPERM etc.: the pid exists but isn't ours *)
      true

let scavenge ~dir =
  let repaired = repair_tail ~dir in
  let jdir = journal_dir dir in
  let recovered = ref 0 in
  (match Sys.readdir jdir with
  | exception Sys_error _ -> ()
  | names ->
      Array.sort compare names;
      Array.iter
        (fun name ->
          let path = Filename.concat jdir name in
          let pid =
            match String.index_opt name '.' with
            | Some i -> int_of_string_opt (String.sub name 0 i)
            | None -> None
          in
          match pid with
          | None -> ()
          | Some pid when pid_alive pid -> ()
          | Some _ -> (
              (* dead owner: its in-flight record becomes crash history;
                 a torn journal (killed mid-journal-write) is just
                 deleted — its run never got far enough to matter *)
              match
                String.trim (read_file path) |> fun line ->
                of_json (Json.of_string line)
              with
              | exception (Sys_error _ | Json.Parse_error _) ->
                  (try Sys.remove path with Sys_error _ -> ())
              | Error _ -> (try Sys.remove path with Sys_error _ -> ())
              | Ok e ->
                  (try
                     append ~dir e;
                     incr recovered
                   with _ -> ());
                  (try Sys.remove path with Sys_error _ -> ())))
        names);
  (!recovered, repaired)

let start ?dir ~ts ~subcommand ~problem ~config ~build () =
  let p =
    {
      p_dir = (match dir with Some d -> d | None -> default_dir ());
      p_t0 = Unix.gettimeofday ();
      p_ts = ts;
      p_cmd = subcommand;
      p_problem = problem;
      p_config = config;
      p_build = build;
      p_recorded = false;
      p_journal = None;
    }
  in
  journal_start p;
  p

(* Idempotent, and never lets a ledger failure break the command it is
   recording: the history is diagnostics, not the result. *)
let finish ?stats ?(metrics = []) ?(cache_hit = false) p ~outcome ~exit_code =
  if not p.p_recorded then begin
    p.p_recorded <- true;
    journal_finish p;
    let wall = Unix.gettimeofday () -. p.p_t0 in
    let e =
      {
        version = format_version;
        ts = p.p_ts;
        subcommand = p.p_cmd;
        problem = p.p_problem;
        outcome;
        exit_code;
        cache_hit;
        wall_s = wall;
        build = p.p_build;
        config = p.p_config;
        metrics = ("wall_s", wall) :: metrics;
        stats;
      }
    in
    try append ~dir:p.p_dir e
    with exn ->
      Printf.eprintf "fecsynth: warning: could not append to run ledger %s: %s\n%!"
        (file ~dir:p.p_dir) (Printexc.to_string exn)
  end

(* ---------- trend analytics ---------- *)

let quantile values q =
  match List.sort Float.compare values with
  | [] -> None
  | sorted ->
      let n = List.length sorted in
      (* nearest rank ⌈q·N⌉, consistent with Metrics.Hist.quantile *)
      let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
      Some (List.nth sorted (rank - 1))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

type series = {
  s_cmd : string;
  s_problem : string;
  s_metric : string;
  points : (string * float) list;  (* (ts, value), oldest first *)
}

let series ?subcommand ?problem ~metric entries =
  let tbl : (string * string * string, (string * float) list) Hashtbl.t =
    Hashtbl.create 32
  in
  let order = ref [] in
  List.iter
    (fun e ->
      let keep =
        (match subcommand with Some c -> e.subcommand = c | None -> true)
        && match problem with Some p -> contains ~sub:p e.problem | None -> true
      in
      if keep then
        List.iter
          (fun (k, v) ->
            if contains ~sub:metric k then begin
              let key = (e.subcommand, e.problem, k) in
              if not (Hashtbl.mem tbl key) then order := key :: !order;
              Hashtbl.replace tbl key
                ((e.ts, v)
                :: Option.value (Hashtbl.find_opt tbl key) ~default:[])
            end)
          e.metrics)
    entries;
  List.rev_map
    (fun ((c, p, k) as key) ->
      {
        s_cmd = c;
        s_problem = p;
        s_metric = k;
        points = List.rev (Hashtbl.find tbl key);
      })
    !order

type trend = {
  t_series : series;
  n : int;
  last : float;
  p50 : float;
  p95 : float;
  lo : float;
  hi : float;
  pct_vs_baseline : float option;
      (* latest point vs the median of all prior points; None with < 2 *)
  regression : bool;
}

let trend ~threshold s =
  let values = List.map snd s.points in
  let n = List.length values in
  if n = 0 then invalid_arg "Ledger.trend: empty series";
  let last = List.nth values (n - 1) in
  let p50 = Option.get (quantile values 0.5) in
  let p95 = Option.get (quantile values 0.95) in
  let lo = List.fold_left Float.min infinity values in
  let hi = List.fold_left Float.max neg_infinity values in
  let prior = List.filteri (fun i _ -> i < n - 1) values in
  let pct_vs_baseline =
    match quantile prior 0.5 with
    | None -> None
    | Some base ->
        (* the same zero-baseline convention as Analyze.diff *)
        Some
          (if base = 0.0 && last = 0.0 then 0.0
           else if base = 0.0 then infinity
           else (last -. base) /. base *. 100.0)
  in
  {
    t_series = s;
    n;
    last;
    p50;
    p95;
    lo;
    hi;
    pct_vs_baseline;
    regression =
      (match pct_vs_baseline with Some p -> p > threshold | None -> false);
  }
