type value = Bool of bool | Int of int | Float of float | Str of string
type fields = (string * value) list

type event =
  | Span_begin of {
      ts : float;
      id : int;
      parent : int option;
      name : string;
      fields : fields;
    }
  | Span_end of { ts : float; id : int; name : string; dur : float; fields : fields }
  | Counter of { ts : float; name : string; value : int; fields : fields }
  | Gauge of { ts : float; name : string; value : float; fields : fields }
  | Point of { ts : float; name : string; fields : fields }

type t = { emit : event -> unit; flush : unit -> unit }

let event_kind = function
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Point _ -> "event"

let event_name = function
  | Span_begin { name; _ }
  | Span_end { name; _ }
  | Counter { name; _ }
  | Gauge { name; _ }
  | Point { name; _ } -> name

let json_of_value = function
  | Bool b -> Json.Bool b
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | Str s -> Json.Str s

let json_of_event ev =
  let head ts name = [ ("ts", Json.Float ts); ("kind", Json.Str (event_kind ev)); ("name", Json.Str name) ] in
  let custom fields = List.map (fun (k, v) -> (k, json_of_value v)) fields in
  let entries =
    match ev with
    | Span_begin { ts; id; parent; name; fields } ->
        head ts name
        @ [ ("id", Json.Int id) ]
        @ (match parent with None -> [] | Some p -> [ ("parent", Json.Int p) ])
        @ custom fields
    | Span_end { ts; id; name; dur; fields } ->
        head ts name @ [ ("id", Json.Int id); ("dur", Json.Float dur) ] @ custom fields
    | Counter { ts; name; value; fields } ->
        head ts name @ [ ("value", Json.Int value) ] @ custom fields
    | Gauge { ts; name; value; fields } ->
        head ts name @ [ ("value", Json.Float value) ] @ custom fields
    | Point { ts; name; fields } -> head ts name @ custom fields
  in
  Json.Obj entries

let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let tee = function
  | [ s ] -> s
  | sinks ->
      {
        emit = (fun ev -> List.iter (fun s -> s.emit ev) sinks);
        flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
      }

let ndjson_writer write =
  let mutex = Mutex.create () in
  {
    emit =
      (fun ev ->
        let line = Json.to_string (json_of_event ev) ^ "\n" in
        Mutex.protect mutex (fun () -> write line));
    flush = (fun () -> ());
  }

let ndjson oc =
  let s = ndjson_writer (output_string oc) in
  { s with flush = (fun () -> flush oc) }

let memory () =
  let mutex = Mutex.create () in
  let events = ref [] in
  ( {
      emit = (fun ev -> Mutex.protect mutex (fun () -> events := ev :: !events));
      flush = (fun () -> ());
    },
    fun () -> Mutex.protect mutex (fun () -> List.rev !events) )

type summary = {
  spans : (string * (int * float)) list;
  counters : (string * int) list;
  gauges : (string * float) list;
  points : (string * int) list;
}

let summary () =
  let mutex = Mutex.create () in
  let spans : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let gauges : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let points : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let emit ev =
    Mutex.protect mutex (fun () ->
        match ev with
        | Span_begin _ -> ()
        | Span_end { name; dur; _ } ->
            let c, total =
              Option.value (Hashtbl.find_opt spans name) ~default:(0, 0.0)
            in
            Hashtbl.replace spans name (c + 1, total +. dur)
        | Counter { name; value; _ } ->
            let c = Option.value (Hashtbl.find_opt counters name) ~default:0 in
            Hashtbl.replace counters name (c + value)
        | Gauge { name; value; _ } -> Hashtbl.replace gauges name value
        | Point { name; _ } ->
            let c = Option.value (Hashtbl.find_opt points name) ~default:0 in
            Hashtbl.replace points name (c + 1))
  in
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let read () =
    Mutex.protect mutex (fun () ->
        {
          spans = sorted spans;
          counters = sorted counters;
          gauges = sorted gauges;
          points = sorted points;
        })
  in
  ({ emit; flush = (fun () -> ()) }, read)

let pp_summary fmt s =
  let line pp_v (name, v) = Format.fprintf fmt "  %-32s %a@." name pp_v v in
  if s.spans <> [] then begin
    Format.fprintf fmt "spans (count, total seconds):@.";
    List.iter
      (line (fun fmt (c, t) -> Format.fprintf fmt "%8d %12.4f" c t))
      s.spans
  end;
  if s.counters <> [] then begin
    Format.fprintf fmt "counters:@.";
    List.iter (line (fun fmt c -> Format.fprintf fmt "%8d" c)) s.counters
  end;
  if s.gauges <> [] then begin
    Format.fprintf fmt "gauges (last value):@.";
    List.iter (line (fun fmt g -> Format.fprintf fmt "%12.4f" g)) s.gauges
  end;
  if s.points <> [] then begin
    Format.fprintf fmt "events:@.";
    List.iter (line (fun fmt c -> Format.fprintf fmt "%8d" c)) s.points
  end
