(* The self-contained HTML dashboard behind [fecsynth runs html]: one
   file, hand-rolled like json.ml, zero external assets or URLs, inline
   SVG sparklines and bar charts, light/dark via CSS custom properties.

   Rendering discipline (so the output stays machine-checkable): every
   element is explicitly closed except the void <meta>; '<', '>', '&'
   and '"' in data are always escaped; attributes never contain a
   literal '>'.  [well_formed] enforces exactly that contract plus the
   no-external-reference rule, and `make check` runs it. *)

(* ---------- escaping and small helpers ---------- *)

let esc s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_secs s =
  if s < 0.001 then Printf.sprintf "%.1fms" (s *. 1000.0)
  else if s < 10.0 then Printf.sprintf "%.3fs" s
  else Printf.sprintf "%.1fs" s

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* outcome -> status class, icon glyph (color never carries the state
   alone: the icon + label pair always rides along) *)
let outcome_status outcome =
  match outcome with
  | "synthesized" | "verified" | "certified" | "ok" -> ("good", "\xe2\x9c\x94")
  | "partial" -> ("warning", "\xe2\x89\x88")
  | "timeout" | "interrupted" -> ("serious", "!")
  | "crash" | "error" | "refuted" -> ("critical", "\xe2\x9c\x96")
  | _ -> ("neutral", "\xc2\xb7")

(* ---------- the stylesheet (reference palette, light + dark) ---------- *)

let style =
  {css|
.viz-root {
  color-scheme: light;
  --page:       #f9f9f7;
  --surface-1:  #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --gridline:   #e1e0d9;
  --baseline:   #c3c2b7;
  --border:     rgba(11,11,11,0.10);
  --series-1:   #2a78d6;
  --series-2:   #eb6834;
  --status-good:     #0ca30c;
  --status-warning:  #fab219;
  --status-serious:  #ec835a;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page:       #0d0d0d;
    --surface-1:  #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --gridline:   #2c2c2a;
    --baseline:   #383835;
    --border:     rgba(255,255,255,0.10);
    --series-1:   #3987e5;
    --series-2:   #d95926;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page:       #0d0d0d;
  --surface-1:  #1a1a19;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted:     #898781;
  --gridline:   #2c2c2a;
  --baseline:   #383835;
  --border:     rgba(255,255,255,0.10);
  --series-1:   #3987e5;
  --series-2:   #d95926;
}
.viz-root {
  margin: 0; padding: 24px;
  background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
h1 { font-size: 20px; margin: 0 0 4px 0; }
h2 { font-size: 15px; margin: 28px 0 10px 0; color: var(--text-primary); }
.sub { color: var(--text-secondary); margin: 0 0 20px 0; }
.card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { min-width: 130px; flex: 0 1 auto; }
.tile .v { font-size: 26px; font-weight: 600; }
.tile .l { color: var(--text-muted); font-size: 12px; }
.grid { display: flex; flex-wrap: wrap; gap: 12px; }
.trend { width: 252px; }
.trend .name { color: var(--text-secondary); font-size: 12px;
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.trend .v { font-size: 16px; font-weight: 600; }
.trend .range { color: var(--text-muted); font-size: 11px; }
svg { display: block; }
svg text { font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
.line1 { fill: none; stroke: var(--series-1); stroke-width: 2; }
.dot1 { fill: var(--series-1); stroke: var(--surface-1); stroke-width: 2; }
.pt { fill: var(--series-1); }
.axis { stroke: var(--baseline); stroke-width: 1; }
.seg-series-1 { fill: var(--series-1); }
.seg-series-2 { fill: var(--series-2); }
.seg-good { fill: var(--status-good); }
.seg-warning { fill: var(--status-warning); }
.seg-serious { fill: var(--status-serious); }
.seg-critical { fill: var(--status-critical); }
.seg-neutral { fill: var(--text-muted); }
.legend { list-style: none; display: flex; flex-wrap: wrap;
  gap: 4px 18px; margin: 10px 0 0 0; padding: 0;
  color: var(--text-secondary); font-size: 12px; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 6px; vertical-align: baseline; }
.sw-series-1 { background: var(--series-1); }
.sw-series-2 { background: var(--series-2); }
.sw-good { background: var(--status-good); }
.sw-warning { background: var(--status-warning); }
.sw-serious { background: var(--status-serious); }
.sw-critical { background: var(--status-critical); }
.sw-neutral { background: var(--text-muted); }
.bar-row { display: flex; align-items: center; gap: 10px; margin: 6px 0; }
.bar-row .name { width: 260px; color: var(--text-secondary); font-size: 12px;
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.bar-row .val { color: var(--text-muted); font-size: 12px;
  font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th { text-align: left; color: var(--text-muted); font-weight: 500;
  border-bottom: 1px solid var(--gridline); padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid var(--gridline); padding: 4px 10px 4px 0;
  color: var(--text-secondary); vertical-align: top; }
td.num { font-variant-numeric: tabular-nums; }
td .ico { margin-right: 5px; }
.note { color: var(--text-muted); font-size: 12px; margin-top: 8px; }
|css}

(* ---------- SVG pieces ---------- *)

(* A single-series sparkline: 2px line, per-point hover targets with
   native <title> tooltips, end dot with a 2px surface ring.  One series
   per chart, so no legend (the card names it).  [label] is the
   accessible name; [fmt] renders tooltip values (wall-time by
   default). *)
let sparkline ?(label = "wall-time trend") ?(fmt = fmt_secs) buf ~w ~h points =
  let vals = List.map snd points in
  let n = List.length vals in
  let lo = List.fold_left Float.min infinity vals in
  let hi = List.fold_left Float.max neg_infinity vals in
  let span = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
  let fw = float_of_int w and fh = float_of_int h in
  let pad = 7.0 in
  let x i =
    if n = 1 then fw /. 2.0
    else pad +. ((fw -. (2.0 *. pad)) *. float_of_int i /. float_of_int (n - 1))
  in
  let y v = pad +. ((fh -. (2.0 *. pad)) *. (1.0 -. ((v -. lo) /. span))) in
  Printf.bprintf buf
    "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\" \
     aria-label=\"%s\">"
    w h w h (esc label);
  Printf.bprintf buf
    "<line class=\"axis\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\">\
     </line>"
    pad (fh -. 1.5) (fw -. pad) (fh -. 1.5);
  if n > 1 then begin
    let pts =
      String.concat " "
        (List.mapi
           (fun i v -> Printf.sprintf "%.1f,%.1f" (x i) (y v))
           vals)
    in
    Printf.bprintf buf "<polyline class=\"line1\" points=\"%s\"></polyline>"
      pts
  end;
  List.iteri
    (fun i (ts, v) ->
      if i < n - 1 then
        Printf.bprintf buf
          "<circle class=\"pt\" cx=\"%.1f\" cy=\"%.1f\" r=\"3\"><title>%s \
           &#183; %s</title></circle>"
          (x i) (y v) (esc ts) (esc (fmt v)))
    points;
  (match List.rev points with
  | (ts, v) :: _ ->
      Printf.bprintf buf
        "<circle class=\"dot1\" cx=\"%.1f\" cy=\"%.1f\" r=\"4\"><title>%s \
         &#183; %s</title></circle>"
        (x (n - 1)) (y v) (esc ts) (esc (fmt v))
  | [] -> ());
  Buffer.add_string buf "</svg>"

(* A thin horizontal stacked bar with 2px surface gaps between segments
   and rounded data ends; every segment carries a native tooltip. *)
let stacked_bar buf ~w ~h segments =
  let total = List.fold_left (fun acc (_, _, v) -> acc +. v) 0.0 segments in
  Printf.bprintf buf
    "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\" \
     aria-label=\"distribution\">"
    w h w h;
  if total > 0.0 then begin
    let live = List.filter (fun (_, _, v) -> v > 0.0) segments in
    let gap = 2.0 in
    let avail =
      float_of_int w -. (gap *. float_of_int (max 0 (List.length live - 1)))
    in
    let x = ref 0.0 in
    List.iter
      (fun (cls, label, v) ->
        let seg_w = Float.max 2.0 (avail *. v /. total) in
        Printf.bprintf buf
          "<rect class=\"seg-%s\" x=\"%.1f\" y=\"0\" width=\"%.1f\" \
           height=\"%d\" rx=\"3\"><title>%s &#183; %s (%.0f%%)</title>\
           </rect>"
          cls !x seg_w h (esc label)
          (esc (fmt_num v))
          (100.0 *. v /. total);
        x := !x +. seg_w +. gap)
      live
  end
  else
    Printf.bprintf buf
      "<rect class=\"seg-neutral\" x=\"0\" y=\"0\" width=\"%d\" \
       height=\"%d\" rx=\"3\" opacity=\"0.25\"></rect>"
      w h;
  Buffer.add_string buf "</svg>"

(* ---------- dashboard assembly ---------- *)

let group_by_problem entries =
  let tbl : (string * string, Ledger.entry list) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun (e : Ledger.entry) ->
      let key = (e.Ledger.subcommand, e.Ledger.problem) in
      if not (Hashtbl.mem tbl key) then order := key :: !order;
      Hashtbl.replace tbl key
        (e :: Option.value (Hashtbl.find_opt tbl key) ~default:[]))
    entries;
  List.rev_map (fun key -> (key, List.rev (Hashtbl.find tbl key))) !order

let metric (e : Ledger.entry) key = List.assoc_opt key e.Ledger.metrics

let render (entries : Ledger.entry list) =
  let buf = Buffer.create 16384 in
  let pf fmt = Printf.bprintf buf fmt in
  let n = List.length entries in
  pf "<!DOCTYPE html>";
  pf "<html lang=\"en\"><head><meta charset=\"utf-8\">";
  pf "<title>fecsynth run ledger</title>";
  pf "<style>%s</style></head>" style;
  pf "<body class=\"viz-root\">";
  pf "<h1>fecsynth run ledger</h1>";
  (match (entries, List.rev entries) with
  | first :: _, last :: _ ->
      pf "<p class=\"sub\">%d recorded run%s &#183; %s &#8594; %s</p>" n
        (if n = 1 then "" else "s")
        (esc first.Ledger.ts) (esc last.Ledger.ts)
  | _ -> pf "<p class=\"sub\">no recorded runs yet</p>");

  (* ---- stat tiles ---- *)
  let groups = group_by_problem entries in
  let good =
    List.length
      (List.filter
         (fun e -> fst (outcome_status e.Ledger.outcome) = "good")
         entries)
  in
  let total_wall =
    List.fold_left (fun acc e -> acc +. e.Ledger.wall_s) 0.0 entries
  in
  pf "<div class=\"card tiles\">";
  let tile v l = pf "<div class=\"tile\"><div class=\"v\">%s</div><div class=\"l\">%s</div></div>" v l in
  tile (string_of_int n) "runs recorded";
  tile (string_of_int (List.length groups)) "distinct problems";
  tile
    (if n = 0 then "&#8212;" else Printf.sprintf "%.0f%%" (100.0 *. float_of_int good /. float_of_int n))
    "succeeded";
  tile (esc (fmt_secs total_wall)) "total wall time";
  pf "</div>";

  (* ---- outcome mix ---- *)
  let outcome_counts =
    let tbl = Hashtbl.create 8 and order = ref [] in
    List.iter
      (fun e ->
        let o = e.Ledger.outcome in
        if not (Hashtbl.mem tbl o) then order := o :: !order;
        Hashtbl.replace tbl o
          (1 + Option.value (Hashtbl.find_opt tbl o) ~default:0))
      entries;
    List.rev_map (fun o -> (o, Hashtbl.find tbl o)) !order
  in
  pf "<h2>Outcome mix</h2><div class=\"card\">";
  stacked_bar buf ~w:560 ~h:20
    (List.map
       (fun (o, c) ->
         (fst (outcome_status o), o, float_of_int c))
       outcome_counts);
  pf "<ul class=\"legend\">";
  List.iter
    (fun (o, c) ->
      let cls, icon = outcome_status o in
      pf "<li><span class=\"sw sw-%s\"></span>%s %s &#8212; %d</li>" cls
        (esc icon) (esc o) c)
    outcome_counts;
  pf "</ul></div>";

  (* ---- per-problem wall-time trends ---- *)
  let trend_cap = 18 in
  pf "<h2>Wall-time trends</h2><div class=\"grid\">";
  List.iteri
    (fun i ((cmd, problem), es) ->
      if i < trend_cap then begin
        let points =
          List.filter_map
            (fun e ->
              Option.map (fun v -> (e.Ledger.ts, v)) (metric e "wall_s"))
            es
        in
        match points with
        | [] -> ()
        | _ ->
            let vals = List.map snd points in
            let lo = List.fold_left Float.min infinity vals in
            let hi = List.fold_left Float.max neg_infinity vals in
            let last = List.nth vals (List.length vals - 1) in
            pf "<div class=\"card trend\">";
            pf "<div class=\"name\" title=\"%s\">%s &#183; %s</div>"
              (esc problem) (esc cmd) (esc problem);
            pf "<div class=\"v\">%s</div>" (esc (fmt_secs last));
            sparkline buf ~w:220 ~h:44 points;
            pf "<div class=\"range\">%d run%s &#183; min %s &#183; max %s</div>"
              (List.length points)
              (if List.length points = 1 then "" else "s")
              (esc (fmt_secs lo)) (esc (fmt_secs hi));
            pf "</div>"
      end)
    groups;
  pf "</div>";
  if List.length groups > trend_cap then
    pf "<p class=\"note\">+%d more problem%s not charted (see the table \
        below for every run).</p>"
      (List.length groups - trend_cap)
      (if List.length groups - trend_cap = 1 then "" else "s");

  (* ---- serve ops: daemon load and cache effectiveness ---- *)
  let serve_entries =
    List.filter (fun e -> e.Ledger.subcommand = "serve") entries
  in
  if serve_entries <> [] then begin
    let depth_points =
      List.filter_map
        (fun e ->
          Option.map
            (fun v -> (e.Ledger.ts, v))
            (metric e "serve.queue_depth"))
        serve_entries
    in
    (* cumulative hit rate over the served runs where the cache was in
       play, so the curve shows the cache earning its keep over time *)
    let hit_rate_points =
      let hits = ref 0 and seen = ref 0 in
      List.filter_map
        (fun e ->
          match metric e "cache_hit" with
          | None -> None
          | Some v ->
              incr seen;
              if v > 0.0 then incr hits;
              Some
                ( e.Ledger.ts,
                  100.0 *. float_of_int !hits /. float_of_int !seen ))
        serve_entries
    in
    pf "<h2>Serve ops</h2><div class=\"grid\">";
    (match depth_points with
    | [] -> ()
    | _ ->
        let last = snd (List.nth depth_points (List.length depth_points - 1)) in
        pf "<div class=\"card trend\">";
        pf "<div class=\"name\">admission queue depth</div>";
        pf "<div class=\"v\">%s</div>" (esc (fmt_num last));
        sparkline ~label:"admission queue depth" ~fmt:fmt_num buf ~w:220 ~h:44
          depth_points;
        pf "<div class=\"range\">%d served run%s</div>"
          (List.length depth_points)
          (if List.length depth_points = 1 then "" else "s");
        pf "</div>");
    (match hit_rate_points with
    | [] -> ()
    | _ ->
        let pct v = Printf.sprintf "%.0f%%" v in
        let last =
          snd (List.nth hit_rate_points (List.length hit_rate_points - 1))
        in
        pf "<div class=\"card trend\">";
        pf "<div class=\"name\">cache hit rate (cumulative)</div>";
        pf "<div class=\"v\">%s</div>" (esc (pct last));
        sparkline ~label:"cache hit rate" ~fmt:pct buf ~w:220 ~h:44
          hit_rate_points;
        pf "<div class=\"range\">%d cached lookup%s</div>"
          (List.length hit_rate_points)
          (if List.length hit_rate_points = 1 then "" else "s");
        pf "</div>");
    (* serve latency split: the worker stamps each run's queue wait as
       serve.queue_wait_s, and wall_s is the run time proper — together
       they show whether served latency is load (waiting) or work *)
    let latency =
      List.filter_map
        (fun e ->
          Option.map
            (fun w -> (e.Ledger.ts, w, e.Ledger.wall_s))
            (metric e "serve.queue_wait_s"))
        serve_entries
    in
    (match latency with
    | [] -> ()
    | _ ->
        let total_wait =
          List.fold_left (fun acc (_, w, _) -> acc +. w) 0.0 latency
        in
        let total_run =
          List.fold_left (fun acc (_, _, r) -> acc +. r) 0.0 latency
        in
        let wait_points = List.map (fun (ts, w, _) -> (ts, w)) latency in
        let last = snd (List.nth wait_points (List.length wait_points - 1)) in
        pf "<div class=\"card trend\">";
        pf "<div class=\"name\">serve latency: queue wait vs run time</div>";
        pf "<div class=\"v\">%s</div>" (esc (fmt_secs last));
        sparkline ~label:"per-run queue wait" buf ~w:220 ~h:44 wait_points;
        stacked_bar buf ~w:220 ~h:10
          [
            ("series-2", "queue wait (s)", total_wait);
            ("series-1", "run time (s)", total_run);
          ];
        pf "<div class=\"range\">%s waiting &#183; %s running</div>"
          (esc (fmt_secs total_wait))
          (esc (fmt_secs total_run));
        pf "</div>");
    pf "</div>"
  end;

  (* ---- runtime lens: GC pressure across instrumented runs ---- *)
  (* runs recorded with the runtime lens on carry gc.* ledger metrics;
     the card trends the worst-case pause and splits wall time into
     mutator vs GC, so "is this run GC-bound?" is answered at a glance *)
  let gc_entries =
    List.filter (fun e -> metric e "gc.pause_s_total" <> None) entries
  in
  if gc_entries <> [] then begin
    let pause_points =
      List.filter_map
        (fun e ->
          match
            (metric e "gc.major_pause_p99", metric e "gc.minor_pause_p99")
          with
          | Some v, _ when v > 0.0 -> Some (e.Ledger.ts, v)
          | _, Some v -> Some (e.Ledger.ts, v)
          | _ -> None)
        gc_entries
    in
    let gc_total =
      List.fold_left
        (fun acc e -> acc +. Option.value (metric e "gc.pause_s_total") ~default:0.0)
        0.0 gc_entries
    in
    let mutator_total =
      List.fold_left
        (fun acc e ->
          let gc = Option.value (metric e "gc.pause_s_total") ~default:0.0 in
          acc +. Float.max 0.0 (e.Ledger.wall_s -. gc))
        0.0 gc_entries
    in
    pf "<h2>Runtime (GC lens)</h2><div class=\"grid\">";
    pf "<div class=\"card trend\">";
    pf "<div class=\"name\">gc pause p99 &#183; mutator vs gc</div>";
    (match List.rev pause_points with
    | (_, last) :: _ -> pf "<div class=\"v\">%s</div>" (esc (fmt_secs last))
    | [] -> pf "<div class=\"v\">&#8212;</div>");
    if pause_points <> [] then
      sparkline ~label:"gc pause p99 trend" buf ~w:220 ~h:44 pause_points;
    stacked_bar buf ~w:220 ~h:10
      [
        ("series-1", "mutator (s)", mutator_total);
        ("series-2", "gc pauses (s)", gc_total);
      ];
    pf "<div class=\"range\">%s mutator &#183; %s in gc over %d run%s</div>"
      (esc (fmt_secs mutator_total))
      (esc (fmt_secs gc_total))
      (List.length gc_entries)
      (if List.length gc_entries = 1 then "" else "s");
    pf "</div></div>"
  end;

  (* ---- solver-phase attribution ---- *)
  let effort =
    List.filter_map
      (fun ((cmd, problem), es) ->
        let sum key =
          List.fold_left
            (fun acc e -> acc +. Option.value (metric e key) ~default:0.0)
            0.0 es
        in
        let syn = sum "stats.syn_conflicts" and ver = sum "stats.ver_conflicts" in
        if syn +. ver > 0.0 then Some (cmd, problem, syn, ver) else None)
      groups
  in
  if effort <> [] then begin
    pf "<h2>Solver effort: synthesis vs verification conflicts</h2>\
        <div class=\"card\">";
    List.iteri
      (fun i (cmd, problem, syn, ver) ->
        if i < trend_cap then begin
          pf "<div class=\"bar-row\"><div class=\"name\" title=\"%s\">%s \
              &#183; %s</div>"
            (esc problem) (esc cmd) (esc problem);
          stacked_bar buf ~w:260 ~h:14
            [ ("series-1", "synthesis conflicts", syn);
              ("series-2", "verification conflicts", ver) ];
          pf "<div class=\"val\">%s / %s</div></div>" (esc (fmt_num syn))
            (esc (fmt_num ver))
        end)
      effort;
    pf "<ul class=\"legend\">\
        <li><span class=\"sw sw-series-1\"></span>synthesis conflicts</li>\
        <li><span class=\"sw sw-series-2\"></span>verification \
        conflicts</li></ul>";
    pf "</div>"
  end;

  (* ---- recent runs table (the table view of everything above) ---- *)
  let table_cap = 50 in
  let newest_first = List.rev entries in
  pf "<h2>Recent runs</h2><div class=\"card\"><table>";
  pf "<thead><tr><th>#</th><th>time (UTC)</th><th>command</th>\
      <th>outcome</th><th>exit</th><th>wall</th><th>problem</th></tr>\
      </thead><tbody>";
  List.iteri
    (fun i e ->
      if i < table_cap then begin
        let cls, icon = outcome_status e.Ledger.outcome in
        pf "<tr><td class=\"num\">%d</td><td class=\"num\">%s</td>\
            <td>%s</td><td><span class=\"ico sw sw-%s\"></span>%s %s</td>\
            <td class=\"num\">%d</td><td class=\"num\">%s</td><td>%s</td>\
            </tr>"
          (n - i) (esc e.Ledger.ts) (esc e.Ledger.subcommand) cls (esc icon)
          (esc e.Ledger.outcome) e.Ledger.exit_code
          (esc (fmt_secs e.Ledger.wall_s))
          (esc e.Ledger.problem)
      end)
    newest_first;
  pf "</tbody></table>";
  if n > table_cap then
    pf "<p class=\"note\">showing the %d most recent of %d runs.</p>"
      table_cap n;
  pf "</div>";
  pf "<p class=\"note\">generated by fecsynth runs html &#183; \
      self-contained file, no external assets</p>";
  pf "</body></html>";
  Buffer.contents buf

(* ---------- well-formedness checking ---------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let void_tags = [ "meta"; "br"; "hr"; "img"; "input"; "wbr"; "col" ]

(* Balanced-tag and no-external-reference check over the subset of HTML
   the renderer emits: explicit close tags, XML-style self-closing
   allowed, <meta> and friends void, comments and the doctype skipped.
   Attribute values must not contain a literal '>'; the renderer's
   escaping guarantees that. *)
let well_formed html =
  if
    List.exists
      (fun sub -> contains ~sub html)
      [ "http://"; "https://"; "src="; "url("; "@import" ]
  then Error "external reference (http/https/src/url/@import) present"
  else begin
    let n = String.length html in
    let stack = ref [] in
    let err = ref None in
    let fail msg = if !err = None then err := Some msg in
    let i = ref 0 in
    while !err = None && !i < n do
      (if html.[!i] = '<' then
         if !i + 3 < n && String.sub html !i 4 = "<!--" then begin
           (* comment: skip to --> *)
           let rec find j =
             if j + 3 > n then None
             else if String.sub html j 3 = "-->" then Some (j + 2)
             else find (j + 1)
           in
           match find (!i + 4) with
           | Some j -> i := j
           | None -> fail "unterminated comment"
         end
         else if !i + 1 < n && html.[!i + 1] = '!' then begin
           (* doctype *)
           match String.index_from_opt html !i '>' with
           | Some j -> i := j
           | None -> fail "unterminated doctype"
         end
         else
           match String.index_from_opt html !i '>' with
           | None -> fail "unterminated tag"
           | Some j ->
               let inner = String.sub html (!i + 1) (j - !i - 1) in
               let len = String.length inner in
               if len = 0 then fail "empty tag"
               else begin
                 let closing = inner.[0] = '/' in
                 let self_closing = inner.[len - 1] = '/' in
                 let name_start = if closing then 1 else 0 in
                 let name_end = ref name_start in
                 while
                   !name_end < len
                   &&
                   match inner.[!name_end] with
                   | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> true
                   | _ -> false
                 do
                   incr name_end
                 done;
                 let name =
                   String.lowercase_ascii
                     (String.sub inner name_start (!name_end - name_start))
                 in
                 if name = "" then fail "tag with no name"
                 else if closing then (
                   match !stack with
                   | top :: rest when top = name -> stack := rest
                   | top :: _ ->
                       fail
                         (Printf.sprintf "mismatched </%s> (open: <%s>)" name
                            top)
                   | [] -> fail (Printf.sprintf "</%s> without opener" name))
                 else if (not self_closing) && not (List.mem name void_tags)
                 then stack := name :: !stack;
                 i := j
               end);
      incr i
    done;
    match (!err, !stack) with
    | Some msg, _ -> Error msg
    | None, [] -> Ok ()
    | None, top :: _ -> Error (Printf.sprintf "unclosed <%s>" top)
  end
