(* Runtime-observability lens: a self-process Runtime_events consumer.
   See runtime.mli for the contract.

   Concurrency model: all cursor reads happen under [poll_mutex], taken
   with [try_lock] only — a contended (or reentrant, via the tee) poll
   is simply skipped, never waited for.  The per-ring accounting tables
   are touched exclusively under that mutex, so the callbacks need no
   further synchronization.  [set_request] runs on worker domains and
   only touches the token table (its own mutex) plus a user-event write
   into the calling domain's own ring — the consumer replays it in ring
   order, which is what makes request attribution exact at
   boundaries. *)

module RE = Runtime_events

(* ---------- phase classification ----------

   Pauses are attributed per class with a per-class depth counter: only
   the outermost span of a class accumulates, so nested phases of the
   same class (EV_MAJOR_SLICE inside EV_MAJOR, STW sub-phases) never
   double count.  Minor-inside-major overlap can in principle count a
   sliver twice; mutator time is computed as a remainder downstream, so
   the worst case is a slightly conservative mutator figure. *)

type cls = Minor | Major | Wait

let classify : RE.runtime_phase -> cls option = function
  | RE.EV_MINOR | RE.EV_EXPLICIT_GC_MINOR -> Some Minor
  | RE.EV_MAJOR | RE.EV_MAJOR_SLICE | RE.EV_MAJOR_GC_STW
  | RE.EV_MAJOR_FINISH_CYCLE | RE.EV_MAJOR_FINISH_MARKING
  | RE.EV_MAJOR_FINISH_SWEEPING | RE.EV_EXPLICIT_GC_MAJOR
  | RE.EV_EXPLICIT_GC_FULL_MAJOR | RE.EV_EXPLICIT_GC_MAJOR_SLICE
  | RE.EV_EXPLICIT_GC_COMPACT -> Some Major
  | RE.EV_DOMAIN_CONDITION_WAIT -> Some Wait
  | _ -> None

(* ---------- registry instruments ---------- *)

type instruments = {
  h_minor : Metrics.histogram;
  h_major : Metrics.histogram;
  c_alloc : Metrics.counter;
  c_promoted : Metrics.counter;
  c_minor_n : Metrics.counter;
  c_major_n : Metrics.counter;
  c_pause_us : Metrics.counter;
  c_lost : Metrics.counter;
  g_last_minor : Metrics.gauge;
  g_last_major : Metrics.gauge;
}

let instruments =
  lazy
    {
      h_minor =
        Metrics.histogram ~help:"Minor GC pause durations (microseconds)"
          "gc.minor_pause_us";
      h_major =
        Metrics.histogram ~help:"Major GC pause durations (microseconds)"
          "gc.major_pause_us";
      c_alloc =
        Metrics.counter ~help:"Minor-heap words allocated"
          "gc.allocated_words_total";
      c_promoted =
        Metrics.counter ~help:"Words promoted to the major heap"
          "gc.promoted_words_total";
      c_minor_n =
        Metrics.counter ~help:"Minor collections" "gc.minor_collections_total";
      c_major_n =
        Metrics.counter ~help:"Completed major GC cycles"
          "gc.major_collections_total";
      c_pause_us =
        Metrics.counter ~help:"Total GC pause time (microseconds)"
          "gc.pause_us_total";
      c_lost =
        Metrics.counter ~help:"Runtime events dropped by ring overflow"
          "runtime.events_lost_total";
      g_last_minor =
        Metrics.gauge ~help:"Most recent minor GC pause (seconds)"
          "gc.last_minor_pause_s";
      g_last_major =
        Metrics.gauge ~help:"Most recent major GC pause (seconds)"
          "gc.last_major_pause_s";
    }

(* ---------- per-ring accounting ---------- *)

type ring = {
  index : int;
  g_util : Metrics.gauge;
  mutable req : string option;  (* request currently on this domain *)
  (* per-class outermost-span tracking *)
  mutable minor_depth : int;
  mutable minor_start : int64;
  mutable major_depth : int;
  mutable major_start : int64;
  mutable wait_depth : int;
  mutable wait_start : int64;
  (* totals since lens start *)
  minor_hist : Metrics.Histogram.t;  (* µs, lens-local (ungated) *)
  major_hist : Metrics.Histogram.t;
  mutable minor_s : float;
  mutable major_s : float;
  mutable wait_s : float;
  mutable minor_n : int;
  mutable major_n : int;
  mutable alloc_words : int;
  mutable promoted_words : int;
  (* deltas since the last emitted runtime.gc point *)
  mutable d_minor_s : float;
  mutable d_major_s : float;
  mutable d_wait_s : float;
  mutable d_minor_n : int;
  mutable d_major_n : int;
  mutable d_alloc : int;
  mutable d_since : float;  (* State.now of the last flush *)
}

type t = {
  cursor : RE.cursor;
  mutable callbacks : RE.Callbacks.t;  (* set once, after [t] exists *)
  poll_mutex : Mutex.t;
  rings : (int, ring) Hashtbl.t;
  mutable last_poll : float;
  min_interval : float;
  pause_threshold_us : int;
  mutable lost : int;
  (* monotonic-ns -> telemetry-epoch offset.  Every batched event was
     generated before the poll that reads it, so [poll_now - event_ns]
     upper-bounds the true offset; keeping the minimum across batches
     converges on it (the freshest event before some poll is ms away).
     A first-event-only estimate can run a whole poll interval late,
     stamping pause points in the future and past the trace's wall. *)
  mutable ns_offset : float option;
  (* State.now () sampled at the top of each poll, before [read_poll] *)
  mutable poll_now : float;
}

let state : t option Atomic.t = Atomic.make None
let active () = Atomic.get state <> None

let ns_to_s ns = Int64.to_float ns /. 1e9

let refine_offset t ts =
  let cand = t.poll_now -. ns_to_s (RE.Timestamp.to_int64 ts) in
  match t.ns_offset with
  | Some off when off <= cand -> ()
  | _ -> t.ns_offset <- Some cand

let event_now t ts =
  let s = ns_to_s (RE.Timestamp.to_int64 ts) in
  let off =
    match t.ns_offset with
    | Some off -> off
    | None ->
        let off = t.poll_now -. s in
        t.ns_offset <- Some off;
        off
  in
  (* never stamp past the reading poll: a skewed offset must not push
     points beyond the trace's wall *)
  Float.min (s +. off) (State.now ())

(* Emit through the installed telemetry sink directly (this module sits
   below [Telemetry], so it cannot use the stamped helpers; request
   correlation is explicit via ring tags instead of ambient context). *)
let emit_point ~ts name fields =
  match Atomic.get State.state with
  | None -> ()
  | Some s -> s.Sink.emit (Sink.Point { ts; name; fields })

let req_field r = match r.req with
  | None -> []
  | Some id -> [ ("request", Sink.Str id) ]

let get_ring t index =
  match Hashtbl.find_opt t.rings index with
  | Some r -> r
  | None ->
      let r =
        {
          index;
          g_util =
            Metrics.gauge ~help:"Mutator fraction of the last poll interval"
              ~labels:[ ("domain", string_of_int index) ]
              "domain.util";
          req = None;
          minor_depth = 0;
          minor_start = 0L;
          major_depth = 0;
          major_start = 0L;
          wait_depth = 0;
          wait_start = 0L;
          minor_hist = Metrics.Histogram.create ();
          major_hist = Metrics.Histogram.create ();
          minor_s = 0.0;
          major_s = 0.0;
          wait_s = 0.0;
          minor_n = 0;
          major_n = 0;
          alloc_words = 0;
          promoted_words = 0;
          d_minor_s = 0.0;
          d_major_s = 0.0;
          d_wait_s = 0.0;
          d_minor_n = 0;
          d_major_n = 0;
          d_alloc = 0;
          (* rings are created lazily inside [read_poll], so the events
             feeding this ring's first interval date back to the previous
             drain point — not to now, which would drop everything before
             the first poll on the floor (a domain spawned mid-interval
             overclaims at most one [min_interval] of mutator time) *)
          d_since = t.last_poll;
        }
      in
      Hashtbl.replace t.rings index r;
      r

(* Flush a ring's pending deltas as one aggregate [runtime.gc] point and
   refresh its util gauge.  Quiet intervals are folded into the next
   active one (d_since only advances on emission), so the emitted
   intervals tile the run without flooding idle daemons with points. *)
let flush_ring r ~now ~force =
  let interval = now -. r.d_since in
  let activity =
    r.d_minor_n > 0 || r.d_major_n > 0 || r.d_alloc > 0
    || r.d_minor_s > 0.0 || r.d_major_s > 0.0 || r.d_wait_s > 0.0
  in
  if interval > 0.0 && (activity || (force && r.req <> None)) then begin
    let gc = r.d_minor_s +. r.d_major_s in
    let util =
      Float.max 0.0 (Float.min 1.0 (1.0 -. ((gc +. r.d_wait_s) /. interval)))
    in
    Metrics.set r.g_util util;
    emit_point ~ts:now "runtime.gc"
      ([
         ("domain", Sink.Int r.index);
         ("interval_s", Sink.Float interval);
         ("minor_s", Sink.Float r.d_minor_s);
         ("major_s", Sink.Float r.d_major_s);
         ("wait_s", Sink.Float r.d_wait_s);
         ("minor_n", Sink.Int r.d_minor_n);
         ("major_n", Sink.Int r.d_major_n);
         ("alloc_words", Sink.Int r.d_alloc);
       ]
      @ req_field r);
    r.d_minor_s <- 0.0;
    r.d_major_s <- 0.0;
    r.d_wait_s <- 0.0;
    r.d_minor_n <- 0;
    r.d_major_n <- 0;
    r.d_alloc <- 0;
    r.d_since <- now
  end
  else if interval > 0.0 && force && not activity then
    (* nothing to report; restart the quiet interval so a later point
       does not claim wall time that belongs before this flush *)
    r.d_since <- now

let on_phase_begin t index ts phase =
  refine_offset t ts;
  match classify phase with
  | None -> ()
  | Some cls ->
      let r = get_ring t index in
      let ns = RE.Timestamp.to_int64 ts in
      (match cls with
      | Minor ->
          if r.minor_depth = 0 then r.minor_start <- ns;
          r.minor_depth <- r.minor_depth + 1
      | Major ->
          if r.major_depth = 0 then r.major_start <- ns;
          r.major_depth <- r.major_depth + 1
      | Wait ->
          if r.wait_depth = 0 then r.wait_start <- ns;
          r.wait_depth <- r.wait_depth + 1)

let on_phase_end t index ts phase =
  refine_offset t ts;
  match classify phase with
  | None -> ()
  | Some cls ->
      let r = get_ring t index in
      let ns = RE.Timestamp.to_int64 ts in
      let i = Lazy.force instruments in
      let finish start =
        let dur_s = Float.max 0.0 (ns_to_s (Int64.sub ns start)) in
        let dur_us = int_of_float (dur_s *. 1e6) in
        (dur_s, dur_us)
      in
      let pause_point name dur_s =
        if dur_s *. 1e6 >= float_of_int t.pause_threshold_us then
          emit_point ~ts:(event_now t ts) name
            ([ ("domain", Sink.Int r.index); ("dur_s", Sink.Float dur_s) ]
            @ req_field r)
      in
      (match cls with
      | Minor ->
          if r.minor_depth > 0 then begin
            r.minor_depth <- r.minor_depth - 1;
            if r.minor_depth = 0 then begin
              let dur_s, dur_us = finish r.minor_start in
              r.minor_s <- r.minor_s +. dur_s;
              r.d_minor_s <- r.d_minor_s +. dur_s;
              r.minor_n <- r.minor_n + 1;
              r.d_minor_n <- r.d_minor_n + 1;
              Metrics.Histogram.observe r.minor_hist dur_us;
              Metrics.observe i.h_minor dur_us;
              Metrics.incr i.c_minor_n 1;
              Metrics.incr i.c_pause_us dur_us;
              Metrics.set i.g_last_minor dur_s;
              pause_point "runtime.gc.minor" dur_s
            end
          end
      | Major ->
          if r.major_depth > 0 then begin
            r.major_depth <- r.major_depth - 1;
            if r.major_depth = 0 then begin
              let dur_s, dur_us = finish r.major_start in
              r.major_s <- r.major_s +. dur_s;
              r.d_major_s <- r.d_major_s +. dur_s;
              Metrics.Histogram.observe r.major_hist dur_us;
              Metrics.observe i.h_major dur_us;
              Metrics.incr i.c_pause_us dur_us;
              Metrics.set i.g_last_major dur_s;
              pause_point "runtime.gc.major" dur_s
            end
          end;
          (* a completed cycle, not a slice, is "a major collection" *)
          if phase = RE.EV_MAJOR_FINISH_CYCLE then begin
            r.major_n <- r.major_n + 1;
            r.d_major_n <- r.d_major_n + 1;
            Metrics.incr i.c_major_n 1
          end
      | Wait ->
          if r.wait_depth > 0 then begin
            r.wait_depth <- r.wait_depth - 1;
            if r.wait_depth = 0 then begin
              let dur_s, _ = finish r.wait_start in
              r.wait_s <- r.wait_s +. dur_s;
              r.d_wait_s <- r.d_wait_s +. dur_s
            end
          end)

let on_counter t index _ts counter v =
  let r = get_ring t index in
  let i = Lazy.force instruments in
  match counter with
  | RE.EV_C_MINOR_ALLOCATED ->
      r.alloc_words <- r.alloc_words + v;
      r.d_alloc <- r.d_alloc + v;
      Metrics.incr i.c_alloc v
  | RE.EV_C_MINOR_PROMOTED ->
      r.promoted_words <- r.promoted_words + v;
      Metrics.incr i.c_promoted v
  | _ -> ()

let on_lifecycle t index ts life _arg =
  match life with
  | RE.EV_DOMAIN_SPAWN ->
      emit_point ~ts:(event_now t ts) "runtime.domain.spawn"
        [ ("domain", Sink.Int index) ]
  | RE.EV_DOMAIN_TERMINATE ->
      (* the ring index may be recycled by a later domain: close out the
         departing domain's accounting and drop its request tag *)
      (match Hashtbl.find_opt t.rings index with
      | Some r ->
          flush_ring r ~now:(State.now ()) ~force:true;
          r.req <- None;
          r.minor_depth <- 0;
          r.major_depth <- 0;
          r.wait_depth <- 0
      | None -> ());
      emit_point ~ts:(event_now t ts) "runtime.domain.terminate"
        [ ("domain", Sink.Int index) ]
  | _ -> ()

let on_lost t _index n =
  t.lost <- t.lost + n;
  Metrics.incr (Lazy.force instruments).c_lost n

(* ---------- request beacons ---------- *)

type RE.User.tag += Fec_request

let beacon = lazy (RE.User.register "fec.request" Fec_request RE.Type.int)

(* token -> request id, bridging the int-only user-event payload; the
   consumer consumes (and removes) tokens in ring order *)
let tokens : (int, string option) Hashtbl.t = Hashtbl.create 16
let token_mutex = Mutex.create ()
let next_token = ref 1

let set_request req =
  match Atomic.get state with
  | None -> ()
  | Some _ ->
      let tok =
        Mutex.protect token_mutex (fun () ->
            let tok = !next_token in
            next_token := tok + 1;
            Hashtbl.replace tokens tok req;
            tok)
      in
      RE.User.write (Lazy.force beacon) tok

let on_user t index _ts ev tok =
  match RE.User.tag ev with
  | Fec_request -> (
      match
        Mutex.protect token_mutex (fun () ->
            let r = Hashtbl.find_opt tokens tok in
            Hashtbl.remove tokens tok;
            r)
      with
      | None -> ()
      | Some req ->
          let r = get_ring t index in
          (* attribute everything up to this boundary to the old tag *)
          flush_ring r ~now:(State.now ()) ~force:true;
          r.req <- req)
  | _ -> ()

(* ---------- polling ---------- *)

let poll_locked t ~force =
  t.poll_now <- State.now ();
  ignore (RE.read_poll t.cursor t.callbacks None);
  let now = State.now () in
  t.last_poll <- now;
  if force then Hashtbl.iter (fun _ r -> flush_ring r ~now ~force:true) t.rings
  else Hashtbl.iter (fun _ r -> flush_ring r ~now ~force:false) t.rings

let poll ?(force = false) () =
  match Atomic.get state with
  | None -> ()
  | Some t ->
      if Mutex.try_lock t.poll_mutex then
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.poll_mutex)
          (fun () -> poll_locked t ~force)

let tick () =
  match Atomic.get state with
  | None -> ()
  | Some t ->
      if State.now () -. t.last_poll >= t.min_interval then
        if Mutex.try_lock t.poll_mutex then
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.poll_mutex)
            (fun () ->
              if State.now () -. t.last_poll >= t.min_interval then
                poll_locked t ~force:false)

let sink () =
  { Sink.emit = (fun _ -> tick ()); flush = (fun () -> poll ~force:true ()) }

(* ---------- lifecycle ---------- *)

(* The runtime parses OCAML_RUNTIME_EVENTS_DIR at process startup, so a
   putenv here cannot redirect our own ring file: it lands in the ring
   directory (the env var's launch-time value, else the working
   directory) and the runtime unlinks it at clean teardown.  A killed
   process leaks its ~65MB ring, so before starting ours sweep
   <pid>.events files whose owning pid is gone — the same scavenging
   discipline the result cache applies to its tmp files.  EPERM (a
   live pid we cannot signal) counts as alive; best-effort throughout. *)
let scavenge_stale_rings () =
  let dir =
    match Sys.getenv_opt "OCAML_RUNTIME_EVENTS_DIR" with
    | Some d when d <> "" -> d
    | _ -> Filename.current_dir_name
  in
  match Sys.readdir dir with
  | exception _ -> ()
  | names ->
      Array.iter
        (fun name ->
          match Filename.chop_suffix_opt ~suffix:".events" name with
          | None -> ()
          | Some stem -> (
              match int_of_string_opt stem with
              | Some pid when pid > 0 && pid <> Unix.getpid () ->
                  let dead =
                    match Unix.kill pid 0 with
                    | () -> false
                    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
                    | exception _ -> false
                  in
                  if dead then
                    (try Sys.remove (Filename.concat dir name) with _ -> ())
              | _ -> ()))
        names

let start ?(min_interval = 0.25) ?(pause_threshold_us = 500) () =
  match Atomic.get state with
  | Some _ -> ()
  | None -> (
      try
        scavenge_stale_rings ();
        RE.start ();
        RE.resume ();
        ignore (Lazy.force instruments);
        ignore (Lazy.force beacon);
        let t =
          {
            cursor = RE.create_cursor None;
            callbacks = RE.Callbacks.create ();
            poll_mutex = Mutex.create ();
            rings = Hashtbl.create 8;
            last_poll = State.now ();
            min_interval;
            pause_threshold_us;
            lost = 0;
            ns_offset = None;
            poll_now = State.now ();
          }
        in
        t.callbacks <-
          RE.Callbacks.create
            ~runtime_begin:(fun i ts ph -> on_phase_begin t i ts ph)
            ~runtime_end:(fun i ts ph -> on_phase_end t i ts ph)
            ~runtime_counter:(fun i ts c v -> on_counter t i ts c v)
            ~lifecycle:(fun i ts l arg -> on_lifecycle t i ts l arg)
            ~lost_events:(fun i n -> on_lost t i n)
            ()
          |> RE.Callbacks.add_user_event RE.Type.int (fun i ts ev v ->
                 on_user t i ts ev v);
        Atomic.set state (Some t);
        (* baseline drain: consume whatever predates the lens so the
           first emitted intervals start at [start] time *)
        Mutex.protect t.poll_mutex (fun () ->
            t.poll_now <- State.now ();
            ignore (RE.read_poll t.cursor t.callbacks None);
            let now = State.now () in
            t.last_poll <- now;
            Hashtbl.iter
              (fun _ r ->
                r.d_minor_s <- 0.0;
                r.d_major_s <- 0.0;
                r.d_wait_s <- 0.0;
                r.d_minor_n <- 0;
                r.d_major_n <- 0;
                r.d_alloc <- 0;
                r.d_since <- now)
              t.rings)
      with _ -> ())

let stop () =
  match Atomic.get state with
  | None -> ()
  | Some t ->
      Atomic.set state None;
      Mutex.protect t.poll_mutex (fun () -> RE.free_cursor t.cursor);
      (try RE.pause () with _ -> ())

(* ---------- aggregate snapshot ---------- *)

type totals = {
  domains : int;
  minor_s : float;
  major_s : float;
  wait_s : float;
  minor_n : int;
  major_n : int;
  alloc_words : int;
  promoted_words : int;
  minor_pauses_us : Metrics.Hist.t;
  major_pauses_us : Metrics.Hist.t;
  lost_events : int;
}

let snapshot () =
  match Atomic.get state with
  | None -> None
  | Some t ->
      Some
        (Mutex.protect t.poll_mutex (fun () ->
             Hashtbl.fold
               (fun _ (r : ring) acc ->
                 {
                   acc with
                   domains = acc.domains + 1;
                   minor_s = acc.minor_s +. r.minor_s;
                   major_s = acc.major_s +. r.major_s;
                   wait_s = acc.wait_s +. r.wait_s;
                   minor_n = acc.minor_n + r.minor_n;
                   major_n = acc.major_n + r.major_n;
                   alloc_words = acc.alloc_words + r.alloc_words;
                   promoted_words = acc.promoted_words + r.promoted_words;
                   minor_pauses_us =
                     Metrics.Hist.add acc.minor_pauses_us
                       (Metrics.Histogram.snapshot r.minor_hist);
                   major_pauses_us =
                     Metrics.Hist.add acc.major_pauses_us
                       (Metrics.Histogram.snapshot r.major_hist);
                 })
               t.rings
               {
                 domains = 0;
                 minor_s = 0.0;
                 major_s = 0.0;
                 wait_s = 0.0;
                 minor_n = 0;
                 major_n = 0;
                 alloc_words = 0;
                 promoted_words = 0;
                 minor_pauses_us = Metrics.Hist.zero;
                 major_pauses_us = Metrics.Hist.zero;
                 lost_events = t.lost;
               }))
