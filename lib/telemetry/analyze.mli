(** Offline analysis of NDJSON telemetry traces and bench baselines.

    The write side ({!Telemetry}, {!Sink}) only emits; this module reads
    traces back and answers the questions the paper's evaluation needs:
    where does synthesis wall time go ({!report}), what does the span
    tree look like as a flamegraph ({!flame}), and did a change regress a
    metric beyond a threshold ({!diff}).  All entry points take file
    {e content} strings, never paths. *)

(** {1 Parsing} *)

type parsed = {
  events : Sink.event list;  (** in file order *)
  truncated : bool;
      (** the final line had no newline terminator and did not parse — an
          interrupted write, tolerated by dropping it *)
}

(** [of_string content] parses one event per line.  A malformed
    newline-terminated line is real corruption: [Error "line N: ..."]. *)
val of_string : string -> (parsed, string) result

val event_ts : Sink.event -> float
val event_fields : Sink.event -> Sink.fields

(** {1 Validation ([fecsynth trace check])} *)

type check = {
  total : int;
  counts : ((string * string) * int) list;
      (** per-[(kind, name)] event tallies, sorted *)
  check_truncated : bool;
  unbalanced_spans : int;
      (** span ids opened but never closed, plus ends without a begin *)
  out_of_order : int;
      (** events whose timestamp regresses within their worker stream
          beyond a small cross-domain reordering slack *)
  unknown_fields : int;
      (** events carrying a custom field this build does not recognize —
          written by a newer fecsynth.  Tolerated (the payload is kept),
          surfaced as a warning by [trace check], never an error. *)
  unknown_field_names : string list;  (** the unrecognized keys, sorted *)
}

val check : parsed -> check

(** {1 Span tree} *)

type span = {
  id : int;
  name : string;
  parent : int option;
  t0 : float;
  dur : float;
  self : float;  (** [dur] minus the summed durations of direct children *)
  begin_fields : Sink.fields;
  end_fields : Sink.fields;
}

(** Completed spans (both begin and end present) in completion order,
    with self-times filled in. *)
val spans : parsed -> span list

(** {1 Per-phase wall-time attribution ([fecsynth trace report])} *)

type phase = { phase : string; total_s : float; calls : int }

type report = {
  events : int;
  wall_s : float;  (** last timestamp minus first *)
  busy_s : float;
      (** summed root-span durations; exceeds [wall_s] when portfolio
          domains overlap *)
  unattributed_s : float;  (** [max 0 (wall_s - busy_s)] *)
  attributed_pct : float;
  iterations : int;
  phases : phase list;
      (** named phases sorted by total self-time, descending.  SAT solver
          self-time is split into [sat.propagate]/[sat.analyze]/
          [sat.restart]/[sat.other] when the trace carries the solver's
          inner-loop timing fields; [ctx.check] self-time appears as
          [smtlite.encode], [cegis.iteration] driver overhead as
          [cegis.loop], [portfolio.worker] self-time as
          [portfolio.idle]. *)
  sat_totals : (string * int) list;
      (** decisions/propagations/conflicts/restarts summed over solver
          calls *)
  slowest : (int * float * (string * float) list) list;
      (** the [top] slowest iterations: number, duration, direct children
          merged by name (slowest first) *)
}

val report : ?top:int -> parsed -> report

(** {1 Request slicing ([fecsynth trace report --request])}

    Daemon traces interleave many requests across worker domains; the
    ambient span context ({!Telemetry.with_context}) stamps every event
    with its request id, so one submit can be sliced back out and
    attributed end to end: queue wait (admission point to first span),
    then per-phase span self-times.  Spans still open at the end of the
    slice — the stalled solve in a flight-recorder postmortem — are
    extended to the slice's last timestamp so a reaped request's stall
    is attributed to the phase it was stuck in. *)

type request_phase = { rq_phase : string; rq_total_s : float; rq_calls : int }

type request_report = {
  rq_id : string;
  rq_events : int;
  rq_wall_s : float;  (** last slice timestamp minus first *)
  rq_queue_wait_s : float;
  rq_open_spans : int;
  rq_phases : request_phase list;
      (** named phases (same mapping as {!report}, plus [queue.wait]),
          sorted by total self-time descending; totals can overlap when
          worker domains run concurrently *)
  rq_attributed_s : float;
      (** wall time covered by queue wait plus root spans, as an interval
          union (never exceeds [rq_wall_s]) *)
  rq_attributed_pct : float;
}

(** Request ids present in the trace with their event counts, busiest
    first. *)
val request_ids : parsed -> (string * int) list

(** [request_report ~request p] slices [p] to the events stamped with
    [request]; [None] when the id never appears. *)
val request_report : request:string -> parsed -> request_report option

(** {1 Runtime lens ([fecsynth trace report] "runtime" section)} *)

(** Per-domain mutator/GC/wait split recovered from the runtime lens's
    [runtime.gc] interval points (see {!Telemetry.Runtime}). *)
type runtime_domain = {
  rt_domain : int;
  rt_covered_s : float;
      (** summed interval seconds: wall time the lens observed on this
          domain *)
  rt_minor_s : float;
  rt_major_s : float;
  rt_wait_s : float;  (** condition-wait (idle) seconds *)
  rt_mutator_s : float;  (** covered minus GC minus wait *)
  rt_minor_n : int;
  rt_major_n : int;
  rt_alloc_words : int;
}

type runtime_section = {
  rt_domains : runtime_domain list;  (** sorted by domain index *)
  rt_gc_s : float;  (** minor + major seconds over all domains *)
  rt_total_mutator_s : float;
  rt_total_wait_s : float;
  rt_pauses : int;  (** over-threshold pause points in the slice *)
  rt_max_pause_s : float;
  rt_covered_pct : float;
      (** best per-domain coverage against the slice's wall clock *)
}

(** [runtime ?request p] aggregates the lens's interval points — sliced
    to one request when [request] is given — into the report's
    "runtime" section; [None] when the trace carries no runtime lens
    data (the lens was off). *)
val runtime : ?request:string -> parsed -> runtime_section option

(** {1 Folded stacks ([fecsynth trace flame])} *)

(** [(stack, self µs)] pairs, stack names joined with [';'], sorted by
    stack — the folded format consumed by flamegraph.pl and speedscope.
    Runtime-lens GC pause points fold in as leaf frames under the
    innermost covering span (their µs deducted from that span's self),
    or as root frames when no span covers them. *)
val flame : parsed -> (string * int) list

val flame_to_string : parsed -> string

(** {1 Metric diffing ([fecsynth trace diff])} *)

type source = Trace | Bench

val source_name : source -> string

(** Scalar metrics of a trace: per-span-name total seconds and counts,
    counter totals, point counts, and overall [wall_s]. *)
val metrics_of_trace : parsed -> (string * float) list

(** Scalar metrics of a parsed BENCH_*.json object:
    [experiment/instance/{wall_s,iterations,conflicts}]. *)
val metrics_of_bench : Json.t -> ((string * float) list, string) result

(** Auto-detects the flavor: a JSON object with an ["instances"] array is
    a bench file, anything else must parse as an NDJSON trace. *)
val metrics_of_string :
  string -> ((string * float) list * source, string) result

type delta = { key : string; va : float; vb : float; pct : float }

type diff = {
  shared : int;
  only_a : int;  (** [List.length removed] *)
  only_b : int;  (** [List.length added] *)
  added : string list;
      (** metric keys present only in [b] (the candidate), sorted *)
  removed : string list;
      (** metric keys present only in [a] (the baseline), sorted *)
  regressions : delta list;
      (** shared metrics that grew by more than [threshold] percent from
          [a] to [b] (a zero baseline growing counts as infinite),
          worst first *)
  improvements : delta list;  (** shrank by more than [threshold] percent *)
}

(** [diff ~threshold a b] compares metric lists; metrics present on only
    one side are never judged against the threshold, but are reported by
    name in [added]/[removed] so a disappearing metric can't hide a
    regression silently. *)
val diff : threshold:float -> (string * float) list -> (string * float) list -> diff
