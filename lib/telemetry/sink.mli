(** The pluggable consumer side of the telemetry layer.

    A sink is two closures: [emit] receives every event, [flush] is called
    when a scope closes (see {!Telemetry.with_sink}).  All built-in sinks
    are safe to share across domains — the portfolio synthesizer emits
    from several domains into one sink — because each serializes its
    internal state under a private mutex. *)

(** A typed field value attached to an event. *)
type value = Bool of bool | Int of int | Float of float | Str of string

type fields = (string * value) list

(** One telemetry event.  [ts] is seconds since the process's telemetry
    epoch (a monotonic-in-practice offset base, immune to the absolute
    clock's magnitude). *)
type event =
  | Span_begin of {
      ts : float;
      id : int;  (** unique per process *)
      parent : int option;  (** innermost enclosing span of this domain *)
      name : string;
      fields : fields;
    }
  | Span_end of {
      ts : float;
      id : int;
      name : string;
      dur : float;  (** seconds since the matching [Span_begin] *)
      fields : fields;
    }
  | Counter of { ts : float; name : string; value : int; fields : fields }
      (** a named monotonic count incremented by [value] *)
  | Gauge of { ts : float; name : string; value : float; fields : fields }
      (** a point-in-time level; aggregation keeps the last value *)
  | Point of { ts : float; name : string; fields : fields }
      (** an instantaneous occurrence *)

type t = { emit : event -> unit; flush : unit -> unit }

val event_kind : event -> string
(** ["span_begin" | "span_end" | "counter" | "gauge" | "event"] *)

val event_name : event -> string

(** [json_of_event e] flattens the event into one JSON object:
    [ts]/[kind]/[name] plus the variant's own keys ([id], [parent], [dur],
    [value]) plus the custom fields. *)
val json_of_event : event -> Json.t

(** A sink that drops everything (distinct from having {e no} sink
    installed: events are still constructed). *)
val null : t

(** [tee sinks] fans every event (and flush) out to each of [sinks] in
    order — e.g. an NDJSON trace plus a live progress display. *)
val tee : t list -> t

(** [ndjson_writer write] serializes each event as one JSON line handed to
    [write] (line terminator included), under a mutex. *)
val ndjson_writer : (string -> unit) -> t

(** [ndjson oc] is {!ndjson_writer} onto a channel; [flush] flushes it. *)
val ndjson : out_channel -> t

(** [memory ()] is a sink accumulating events in order plus a function
    retrieving the events seen so far. *)
val memory : unit -> t * (unit -> event list)

(** Aggregated view kept by the {!summary} sink, sorted by name:
    per-span-name call count and total duration, per-counter totals,
    last gauge values, and per-point-name occurrence counts. *)
type summary = {
  spans : (string * (int * float)) list;
  counters : (string * int) list;
  gauges : (string * float) list;
  points : (string * int) list;
}

(** [summary ()] is a sink folding events into a {!summary} plus a
    function reading the aggregate so far. *)
val summary : unit -> t * (unit -> summary)

(** [pp_summary] renders a summary as an aligned human-readable table. *)
val pp_summary : Format.formatter -> summary -> unit
