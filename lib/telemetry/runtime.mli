(** Runtime-observability lens over OCaml 5's [Runtime_events] ring.

    When started, a per-process consumer cursor turns raw runtime events
    (GC phase begin/end, allocation counters, domain lifecycle) into the
    three observability surfaces the rest of the stack already speaks:

    - {b registry metrics} — [gc_minor_pause_us]/[gc_major_pause_us]
      histograms, [gc_allocated_words_total], [gc_minor_collections_total],
      [gc_major_collections_total], a [gc_pause_us_total] counter and
      last-pause gauges, plus a per-domain [domain_util{domain=N}] gauge
      (mutator fraction of the last poll interval, waits and GC excluded);
    - {b trace events} — per-domain [runtime.gc] aggregate points whose
      [interval_s]/[minor_s]/[major_s]/[wait_s] fields tile the run (so
      [Analyze] can attribute wall time to mutator vs GC), individual
      [runtime.gc.minor]/[runtime.gc.major] pause points above a
      threshold, and [runtime.domain.spawn]/[runtime.domain.terminate]
      lifecycle points — all emitted through the installed telemetry
      sink, so they land in NDJSON traces and flight-recorder rings
      alongside application events;
    - {b request correlation} — [set_request], called from a worker
      domain, writes a user event into that domain's own ring; the
      consumer replays it in event order and stamps subsequent GC
      activity on that ring with the request id, flushing pending
      deltas at each boundary so per-request GC attribution is exact.

    Discipline matches the rest of [Telemetry]: when the lens is not
    started, [tick]/[poll]/[set_request] cost one atomic load and
    allocate nothing. The consumer itself is polled — from the serve
    select loop via [tick], and from [Session]'s observability tee via
    [sink] — never from a signal or a background thread. *)

val start : ?min_interval:float -> ?pause_threshold_us:int -> unit -> unit
(** Start the lens: enable runtime event collection for this process
    (ring files go to [OCAML_RUNTIME_EVENTS_DIR], defaulted to the
    temp directory), create a self cursor and register the gc metric
    instruments. Idempotent. [min_interval] (default 0.25s) throttles
    [tick]/[sink] polling; [pause_threshold_us] (default 500) is the
    minimum individual pause emitted as its own trace point. Never
    raises: if the runtime refuses to start event collection the lens
    just stays inactive. *)

val stop : unit -> unit
(** Drop the cursor and pause runtime event collection. Totals are
    discarded; a later [start] begins fresh. *)

val active : unit -> bool

val tick : unit -> unit
(** Poll the ring if the lens is active and [min_interval] has elapsed
    since the last poll. One atomic load when inactive. *)

val poll : ?force:bool -> unit -> unit
(** Drain the ring now (if active). With [~force:true], every domain's
    pending deltas are flushed as [runtime.gc] points even if nothing
    happened — call this once at the end of a traced run so the
    aggregate intervals cover the full wall time. *)

val sink : unit -> Sink.t
(** A piggyback poller for observability tees: [emit] is [tick] (so
    polling rides on event traffic, like [Metrics.flush_sink]), [flush]
    is [poll ~force:true]. Reentrancy-safe: events emitted by a poll
    re-entering the tee are ignored by the in-flight poll. *)

val set_request : string option -> unit
(** Tag the calling domain's ring with a request id (or clear it with
    [None]). Subsequent GC activity on this domain is attributed to the
    request in trace points; deltas pending at the boundary are flushed
    against the previous tag first. No-op when the lens is inactive. *)

type totals = {
  domains : int;  (** rings that showed any activity *)
  minor_s : float;  (** total seconds in minor collections *)
  major_s : float;  (** total seconds in major work (slices, STW) *)
  wait_s : float;  (** total seconds domains sat in condition waits *)
  minor_n : int;
  major_n : int;  (** completed major cycles *)
  alloc_words : int;  (** minor-heap words allocated *)
  promoted_words : int;
  minor_pauses_us : Metrics.Hist.t;
  major_pauses_us : Metrics.Hist.t;
  lost_events : int;
}

val snapshot : unit -> totals option
(** Aggregated totals since [start], across all domains. [None] when
    the lens is inactive. Does not poll; call [poll] first for fresh
    numbers. *)
