(** Build identity shared by [fecsynth version] and every run-ledger
    entry, so longitudinal comparisons can always be split by the code
    that produced each data point. *)

(** The code version string; [fecsynth --version] and ledger records both
    read this single constant. *)
val code_version : string

type t = {
  code_version : string;
  git : string option;
      (** [git describe --always --dirty] when available; absent outside a
          work tree or without git on PATH *)
  ocaml : string;  (** the compiler that built the binary *)
  features : string list;  (** compiled-in capabilities, stable order *)
}

(** The feature list baked into this build. *)
val features : string list

(** Capture the current build's identity.  Never raises: the git probe is
    best effort. *)
val detect : unit -> t

(** {!detect}, computed once per process and cached — for callers that
    stamp build identity repeatedly (metrics scrapes, healthz). *)
val current : unit -> t

val to_json : t -> Json.t

(** Lenient decode: missing fields become ["?"]/[None]/[[]], never an
    exception — ledger readers must survive records from other builds. *)
val of_json : Json.t -> t
