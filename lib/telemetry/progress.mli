(** Live single-line progress rendering for interactive runs.

    [sink ~min_interval write] is a {!Sink.t} that folds the event stream
    into a compact status line — iteration count and rate,
    counterexample-pool size, best candidate bound vs. the target
    distance, portfolio worker states and rounds, SAT restart and crash
    counts, elapsed time — and hands ["\r"]-prefixed renders to [write]
    at most every [min_interval] seconds (default 0.1).

    The sink draws nothing on [flush]; it erases its line instead, so the
    subcommand's normal result output lands on a clean row.  With
    [~final:true] it instead draws the final state once more and ends the
    line with ["\n"] — the mode the CLI uses under [FEC_FORCE_TTY=1] so
    non-TTY test harnesses can assert the line's shape.  Callers should
    only install it when the output stream is a TTY (or forced),
    typically [tee]-ed with an NDJSON trace sink. *)

val sink : ?min_interval:float -> ?final:bool -> (string -> unit) -> Sink.t
