(** A minimal self-contained JSON representation: construction, compact
    one-line serialization (the NDJSON sink emits one value per line) and a
    strict parser used by tests and [fecsynth trace-check] to validate
    emitted traces.  No dependencies, no streaming — telemetry events are
    small. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [to_string j] is the compact (no whitespace, single line) rendering.
    Strings are escaped per RFC 8259; non-finite floats become [null]
    (JSON has no representation for them). *)
val to_string : t -> string

(** [of_string s] parses exactly one JSON value spanning the whole string.
    @raise Parse_error on malformed input or trailing garbage. *)
val of_string : string -> t

(** [member key j] is the value bound to [key] when [j] is an object. *)
val member : string -> t -> t option

val to_int : t -> int option
val to_float : t -> float option
val to_string_opt : t -> string option
