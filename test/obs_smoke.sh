#!/bin/sh
# Observability smoke for `fecsynth serve`: one daemon run must prove
# the whole live-diagnosis loop end to end:
#
#   - /metrics (HTTP scrape) serves a Prometheus exposition from the
#     select loop, and its counters are monotone across scrapes;
#   - /healthz reports "ok" while serving and flips to "draining" after
#     SIGTERM (the HTTP listener stays open during drain exactly so an
#     operator can watch the drain);
#   - a worker stalled by fault injection past its request deadline is
#     reaped and leaves a parseable flight-recorder postmortem stamped
#     with the reaped request's id;
#   - `trace report --request <id>` on the daemon trace attributes at
#     least 90% of that request's wall time to named phases (the stalled
#     solve is an open span, extended to the slice end);
#   - the runtime lens (default on) lands gc_* series and the
#     fec_build_info gauge in the exposition, a "runtime" section in
#     `trace report` on the daemon trace, and a >= 95%-coverage runtime
#     section on a one-shot `synth --runtime-lens` trace; with the lens
#     off, its polling hooks allocate nothing (unit test re-run here).
#
# Deterministic: the fault spec is seeded and the stall fires on the
# first two sat.solve calls only (max=2), one per submitted request.

set -u

FECSYNTH=${FECSYNTH:-_build/install/default/bin/fecsynth}
DIR=${FEC_OBS_DIR:-/tmp/fecsynth-obs-smoke}
PORT=${FEC_OBS_PORT:-$((9200 + $$ % 800))}

SPEC='len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3'

fail() {
  echo "obs-smoke: FAIL: $*" >&2
  [ -f "$DIR/serve.log" ] && sed 's|^|  serve.log: |' "$DIR/serve.log" >&2
  kill "$pid" 2>/dev/null
  exit 1
}

scrape_counter() { # file name -> value (0 when absent)
  v=$(awk -v n="$2" '$1 == n { print $2 }' "$1")
  echo "${v:-0}"
}

rm -rf "$DIR"
mkdir -p "$DIR/flight"
sock=$DIR/serve.sock
pid=

env FEC_LEDGER_DIR="$DIR/ledger" FEC_CACHE_DIR="$DIR/cache" \
  FEC_FAULT_SPEC="seed=2,stall_ms=30000,sat.solve.stall=1.0:max=2" \
  "$FECSYNTH" serve --socket "$sock" --workers 1 --grace 0.5 \
  --metrics-port "$PORT" --flight-dir "$DIR/flight" \
  --trace "$DIR/trace.ndjson" 2> "$DIR/serve.log" &
pid=$!

n=0
while [ "$n" -lt 100 ]; do
  "$FECSYNTH" call --socket "$sock" '{"op":"ping"}' >/dev/null 2>&1 && break
  sleep 0.1
  n=$((n + 1))
done
[ "$n" -lt 100 ] || fail "daemon did not come up"

# ------------------------------------------------ healthy scrape
curl -fsS "http://127.0.0.1:$PORT/healthz" > "$DIR/healthz1.json" 2>/dev/null \
  || fail "/healthz unreachable"
grep -q '"status":"ok"' "$DIR/healthz1.json" || fail "/healthz not ok: $(cat "$DIR/healthz1.json")"
curl -fsS "http://127.0.0.1:$PORT/metrics" > "$DIR/m1.txt" 2>/dev/null \
  || fail "/metrics unreachable"
s1=$(scrape_counter "$DIR/m1.txt" serve_metrics_scrapes)
[ "$s1" -ge 1 ] || fail "first scrape missing serve_metrics_scrapes"

# ------------------------------------------------ stall, deadline, reap
reply=$("$FECSYNTH" call --socket "$sock" \
  "{\"op\":\"submit\",\"await\":true,\"deadline_ms\":300,\"jobs\":1,\"spec\":\"$SPEC\"}") \
  || fail "awaited submit errored"
echo "$reply" | grep -q '"state":"timeout"' || fail "stalled submit not timed out: $reply"
rid=$(echo "$reply" | sed -n 's/.*"request":"\([^"]*\)".*/\1/p')
[ -n "$rid" ] || fail "no request id on the wire: $reply"

# reap fires past deadline + grace; give it a moment to dump the flight
sleep 1.5

curl -fsS "http://127.0.0.1:$PORT/metrics" > "$DIR/m2.txt" 2>/dev/null \
  || fail "second scrape unreachable"
s2=$(scrape_counter "$DIR/m2.txt" serve_metrics_scrapes)
[ "$s2" -gt "$s1" ] || fail "scrape counter not monotone: $s1 then $s2"
adm=$(scrape_counter "$DIR/m2.txt" serve_admitted)
[ "$adm" -ge 1 ] || fail "serve_admitted did not count the submit"
grep -q '^serve_worker_busy{worker="' "$DIR/m2.txt" \
  || fail "no per-worker labeled series in the exposition"
grep -q '^gc_allocated_words_total' "$DIR/m2.txt" \
  || fail "runtime lens gc_* series missing from the exposition"
grep -q '^fec_build_info{' "$DIR/m2.txt" \
  || fail "fec_build_info gauge missing from the exposition"
grep -q '"build":{' "$DIR/healthz1.json" \
  || fail "/healthz carries no build identity"

post=$(ls "$DIR"/flight/postmortem-*.ndjson 2>/dev/null | head -1)
[ -n "$post" ] || fail "reap left no postmortem in $DIR/flight"
grep -q "\"request\":\"$rid\"" "$post" \
  || fail "postmortem does not carry the reaped request id $rid"
# parseable: the analyzer must accept every line (flame tolerates the
# open stalled span; a torn or garbage line is a hard parse error)
"$FECSYNTH" trace flame "$post" > /dev/null || fail "postmortem unparseable"

# ------------------------------------------------ drain visibility
# second stalled request keeps the worker busy through the SIGTERM
"$FECSYNTH" call --socket "$sock" \
  "{\"op\":\"submit\",\"deadline_ms\":2000,\"jobs\":1,\"spec\":\"$SPEC\"}" \
  > /dev/null || fail "second submit errored"
kill -TERM "$pid"
sleep 0.3
curl -fsS "http://127.0.0.1:$PORT/healthz" > "$DIR/healthz2.json" 2>/dev/null \
  || fail "/healthz gone during drain"
grep -q '"status":"draining"' "$DIR/healthz2.json" \
  || fail "/healthz did not flip to draining: $(cat "$DIR/healthz2.json")"
wait "$pid" || fail "daemon exited uncleanly"
grep -q 'drained' "$DIR/serve.log" || fail "no drained notice in serve.log"

# ------------------------------------------------ request attribution
"$FECSYNTH" trace report --request "$rid" --stats json "$DIR/trace.ndjson" \
  > "$DIR/report.json" || fail "trace report --request failed"
pct=$(sed -n 's/.*"attributed_pct":\([0-9.]*\).*/\1/p' "$DIR/report.json")
[ -n "$pct" ] || fail "no attributed_pct in report: $(cat "$DIR/report.json")"
awk -v p="$pct" 'BEGIN { exit !(p >= 90.0) }' \
  || fail "only $pct% of the reaped request's wall attributed"

# ------------------------------------------------ runtime lens
# the daemon ran with the lens on (default): the whole-trace report
# carries a runtime section
"$FECSYNTH" trace report --stats json "$DIR/trace.ndjson" \
  > "$DIR/daemon-report.json" || fail "whole-trace report failed"
grep -q '"runtime":{' "$DIR/daemon-report.json" \
  || fail "daemon trace report has no runtime section"

# a one-shot run under --runtime-lens must attribute >= 95% of its wall
# time across mutator + GC + wait in the report's runtime section; the
# md-7 knee instance runs ~1.5s, long enough for real GC activity to
# land (small instances finish in single-digit ms without a single
# minor collection, so the lens would correctly report nothing)
"$FECSYNTH" synth --runtime-lens --no-ledger --trace "$DIR/lens.ndjson" \
  -p 'len_G = 1 && len_d(G[0]) = 13 && len_c(G[0]) = 15 && md(G[0]) = 7' \
  > /dev/null || fail "synth --runtime-lens errored"
"$FECSYNTH" trace report --stats json "$DIR/lens.ndjson" \
  > "$DIR/lens-report.json" || fail "lens trace report failed"
grep -q '"runtime":{' "$DIR/lens-report.json" \
  || fail "--runtime-lens trace report has no runtime section"
cov=$(sed -n 's/.*"covered_pct":\([0-9.]*\).*/\1/p' "$DIR/lens-report.json")
[ -n "$cov" ] || fail "no covered_pct in lens report"
awk -v c="$cov" 'BEGIN { exit !(c >= 95.0) }' \
  || fail "runtime lens observed only $cov% of the one-shot run"

# lens off (the default for one-shot runs): the polling hooks must not
# allocate — re-run the unit test that asserts it via Gc.minor_words
TESTBIN=${FEC_TEST_TELEMETRY:-_build/default/test/test_telemetry.exe}
if [ -x "$TESTBIN" ]; then
  "$TESTBIN" test runtime 0 > /dev/null 2>&1 \
    || fail "disabled runtime lens allocates (unit test 'runtime 0')"
else
  echo "obs-smoke: note: $TESTBIN not built, zero-alloc check skipped" >&2
fi

echo "obs-smoke: OK (request $rid, ${pct}% attributed, lens ${cov}% covered, postmortem $(basename "$post"))"
