Tracing and machine-readable stats across the fecsynth subcommands.

A synthesis run with --trace writes an NDJSON telemetry stream; trace-check
parses every line (failing on any malformed one) and tallies events by
(kind, name).  The counts vary run to run, but the event vocabulary is the
CLI's contract: solver calls, encoder invocations, CEGIS iterations.

  $ fecsynth synth --trace t.ndjson -p 'len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' > /dev/null
  $ fecsynth trace-check t.ndjson | head -1 | sed 's/[0-9]\+/N/'
  ok: N events
  $ fecsynth trace-check t.ndjson | tail -n +2 | awk '{print $1, $2}' | sort -u
  event card.encode
  event cegis.candidate
  event cegis.session
  span_begin cegis.iteration
  span_begin cegis.verify
  span_begin ctx.check
  span_begin sat.solve
  span_end cegis.iteration
  span_end cegis.verify
  span_end ctx.check
  span_end sat.solve

Every line of the trace is one JSON object with ts/kind/name, so the
machine-readable report of trace-check can itself be parsed:

  $ fecsynth trace-check --stats json t.ndjson | sed 's/"events":[0-9]*/"events":N/' | cut -c1-50
  {"command":"trace-check","events":N,"truncated_tai

--stats json makes synth print one JSON object carrying the outcome, the
code, and the unified stats record (same shape for plain CEGIS, portfolio
and optimization runs):

  $ fecsynth synth --stats json -p 'len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' | tr ',' '\n' | grep -c '"iterations"'
  1
  $ fecsynth synth --stats json -p 'len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' | tr '{,' '\n\n' | grep -o '"outcome":"synthesized"'
  "outcome":"synthesized"

A portfolio run adds worker lifecycle events to the trace:

  $ fecsynth synth --portfolio --jobs 2 --trace tp.ndjson --stats json -p 'len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' > /dev/null
  $ fecsynth trace-check tp.ndjson | tail -n +2 | awk '{print $2}' | sort -u | grep -E '^portfolio\.(start|winner|worker|round)$'
  portfolio.round
  portfolio.start
  portfolio.winner
  portfolio.worker

A malformed trace is rejected with the offending line number:

  $ printf '{"ts":0.1,"kind":"event","name":"x"}\nnot json\n' > bad.ndjson
  $ fecsynth trace-check bad.ndjson 2>&1 | grep -c 'line 2'
  1
