The synthesis daemon: newline-delimited JSON over a Unix socket, worker
domains behind a bounded admission queue, results answered from the
content-addressed cache when possible, every request recorded in the
run ledger, SIGTERM drains in-flight sessions before exit.

  $ export FEC_LEDGER_DIR=$PWD/led
  $ export FEC_CACHE_DIR=$PWD/cache
  $ SPEC='len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3'

Start the daemon on a socket in the test directory and wait for it to
come up (the socket appears once the listener is bound):

  $ fecsynth serve --socket serve.sock 2> serve.log &
  $ SERVE_PID=$!
  $ for i in 1 2 3 4 5 6 7 8 9 10; do test -S serve.sock && break; sleep 0.2; done
  $ test -S serve.sock && echo up
  up

Ping answers without touching any worker:

  $ fecsynth call --socket serve.sock '{"op":"ping"}'
  {"ok":true,"pong":true}

The first submission of a spec is a cold run — a cache miss:

  $ fecsynth submit --socket serve.sock -p "$SPEC" > first.json
  $ grep -o '"outcome":"synthesized"' first.json
  "outcome":"synthesized"
  $ grep -o '"cache_hit":false' first.json
  "cache_hit":false

The identical spec resubmitted is answered from the cache — same
outcome, bit-identical generator, no fresh search:

  $ fecsynth submit --socket serve.sock -p "$SPEC" > second.json
  $ grep -o '"cache_hit":true' second.json
  "cache_hit":true
  $ grep -o '"matrix":"[^"]*"' first.json > m1
  $ grep -o '"matrix":"[^"]*"' second.json > m2
  $ cmp -s m1 m2 && echo identical
  identical

A malformed request is an error reply, not a dead daemon:

  $ fecsynth call --socket serve.sock '{"op":"submit"}'
  {"ok":false,"error":"submit needs spec or optimize"}
  [1]

The stats op reports admission state plus per-worker detail (worker
state ages are wall-clock, normalized here):

  $ fecsynth call --socket serve.sock '{"op":"stats"}' \
  >   | sed -E 's/"since_s":[0-9.e+-]+/"since_s":_/g'
  {"ok":true,"queue_depth":0,"sessions":2,"reaped":0,"draining":false,"workers":[{"worker":0,"state":"idle","since_s":_},{"worker":1,"state":"idle","since_s":_}]}

The metrics op wraps the same snapshot plus a Prometheus exposition;
admitted requests and worker series are visible:

  $ fecsynth call --socket serve.sock '{"op":"metrics"}' \
  >   | grep -c 'serve_admitted 2'
  1
  $ fecsynth call --socket serve.sock '{"op":"metrics"}' \
  >   | grep -c 'serve_worker_busy'
  1

While the daemon is alive it owns the socket: a second daemon probes it,
finds it live, and refuses to start:

  $ fecsynth serve --socket serve.sock 2>&1 | head -1
  fecsynth: error: serve.sock: a serve daemon is already listening

The daemon maintains a pidfile next to the socket:

  $ test -f serve.sock.pid && echo pidfile
  pidfile

SIGTERM drains and exits cleanly:

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ sed -e "s,$PWD,TESTDIR,g" serve.log
  fecsynth serve: listening on serve.sock (2 workers, queue 16)
  fecsynth serve: drained

Both served runs are in the ledger under the serve subcommand, and the
cache hit is a first-class, filterable fact:

  $ fecsynth runs list --subcommand serve | awk 'NR>1 {print $1, $3, $4, $5}'
  1 serve synthesized 0
  2 serve synthesized 0
  $ fecsynth runs list --cache-hits | awk 'NR>1 {print $1}'
  2
  $ fecsynth runs show -- -1 | grep '^cache:'
  cache:    hit

A SIGKILLed daemon leaves a stale socket and pidfile behind; the next
start probes the socket with a ping, finds it dead, and takes over
instead of refusing forever:

  $ fecsynth serve --socket serve.sock 2> serve2.log &
  $ SERVE_PID=$!
  $ for i in 1 2 3 4 5 6 7 8 9 10; do test -S serve.sock && break; sleep 0.2; done
  $ kill -9 $SERVE_PID
  $ wait $SERVE_PID 2> /dev/null
  [137]
  $ test -S serve.sock && echo stale socket left behind
  stale socket left behind
  $ fecsynth serve --socket serve.sock 2> serve3.log &
  $ SERVE_PID=$!
  $ for i in 1 2 3 4 5 6 7 8 9 10; do fecsynth call --socket serve.sock '{"op":"ping"}' > /dev/null 2>&1 && break; sleep 0.2; done
  $ fecsynth call --socket serve.sock '{"op":"ping"}'
  {"ok":true,"pong":true}
  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ grep -o 'removing stale socket serve.sock' serve3.log
  removing stale socket serve.sock
  $ test -e serve.sock || echo socket cleaned up
  socket cleaned up
  $ test -e serve.sock.pid || echo pidfile cleaned up
  pidfile cleaned up

A client with retries rides out a daemon that is still coming up:

  $ (sleep 0.6; exec fecsynth serve --socket retry.sock 2> retry.log) &
  $ SERVE_PID=$!
  $ fecsynth call --socket retry.sock --retries 8 --connect-timeout 2 '{"op":"ping"}'
  {"ok":true,"pong":true}
  $ fecsynth call --socket retry.sock '{"op":"shutdown"}'
  {"ok":true,"draining":true}
  $ wait $SERVE_PID
