The synthesis daemon: newline-delimited JSON over a Unix socket, worker
domains behind a bounded admission queue, results answered from the
content-addressed cache when possible, every request recorded in the
run ledger, SIGTERM drains in-flight sessions before exit.

  $ export FEC_LEDGER_DIR=$PWD/led
  $ export FEC_CACHE_DIR=$PWD/cache
  $ SPEC='len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3'

Start the daemon on a socket in the test directory and wait for it to
come up (the socket appears once the listener is bound):

  $ fecsynth serve --socket serve.sock 2> serve.log &
  $ SERVE_PID=$!
  $ for i in 1 2 3 4 5 6 7 8 9 10; do test -S serve.sock && break; sleep 0.2; done
  $ test -S serve.sock && echo up
  up

Ping answers without touching any worker:

  $ fecsynth call --socket serve.sock '{"op":"ping"}'
  {"ok":true,"pong":true}

The first submission of a spec is a cold run — a cache miss:

  $ fecsynth submit --socket serve.sock -p "$SPEC" > first.json
  $ grep -o '"outcome":"synthesized"' first.json
  "outcome":"synthesized"
  $ grep -o '"cache_hit":false' first.json
  "cache_hit":false

The identical spec resubmitted is answered from the cache — same
outcome, bit-identical generator, no fresh search:

  $ fecsynth submit --socket serve.sock -p "$SPEC" > second.json
  $ grep -o '"cache_hit":true' second.json
  "cache_hit":true
  $ grep -o '"matrix":"[^"]*"' first.json > m1
  $ grep -o '"matrix":"[^"]*"' second.json > m2
  $ cmp -s m1 m2 && echo identical
  identical

A malformed request is an error reply, not a dead daemon:

  $ fecsynth call --socket serve.sock '{"op":"submit"}'
  {"ok":false,"error":"submit needs spec or optimize"}
  [1]

The stats op reports admission state:

  $ fecsynth call --socket serve.sock '{"op":"stats"}'
  {"ok":true,"queue_depth":0,"sessions":2,"draining":false}

SIGTERM drains and exits cleanly:

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ sed -e "s,$PWD,TESTDIR,g" serve.log
  fecsynth serve: listening on serve.sock (2 workers, queue 16)
  fecsynth serve: drained

Both served runs are in the ledger under the serve subcommand, and the
cache hit is a first-class, filterable fact:

  $ fecsynth runs list --subcommand serve | awk 'NR>1 {print $1, $3, $4, $5}'
  1 serve synthesized 0
  2 serve synthesized 0
  $ fecsynth runs list --cache-hits | awk 'NR>1 {print $1}'
  2
  $ fecsynth runs show -- -1 | grep '^cache:'
  cache:    hit
