The fecsynth trace family: report (per-phase wall-time attribution),
flame (folded stacks), diff (metric regression gate) and check (the old
trace-check, now also a subcommand).

  $ fecsynth synth --trace t.ndjson -p 'len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' > /dev/null

trace report attributes wall time to named phases; the solver's
inner-loop split and the CEGIS driver phases are always present on a
synthesis trace:

  $ fecsynth trace report t.ndjson | head -5 | sed 's/[0-9][0-9.]*/N/g'
  events:      N
  wall:        Ns
  busy:        Ns
  attributed:  N% (Ns unattributed)
  iterations:  N
  $ fecsynth trace report t.ndjson | awk 'NF==3 && $1 != "phase" {print $1}' | sort
  cegis.loop
  cegis.verify
  sat.analyze
  sat.other
  sat.propagate
  sat.restart
  smtlite.encode
  $ fecsynth trace report --stats json t.ndjson | cut -c1-34
  {"command":"trace-report","events"

trace flame folds the span tree into flamegraph.pl input — every line is
"stack <self microseconds>", stacks rooted at cegis.iteration:

  $ fecsynth trace flame t.ndjson | awk '{print $1}' | sort -u
  cegis.iteration
  cegis.iteration;cegis.verify
  cegis.iteration;ctx.check
  cegis.iteration;ctx.check;sat.solve
  $ fecsynth trace flame t.ndjson | awk '$2 !~ /^[0-9]+$/ {bad=1} END {print (bad ? "BAD" : "ok")}'
  ok

trace check is the old trace-check under the family; both spellings
agree byte for byte:

  $ fecsynth trace check t.ndjson > a.out && fecsynth trace-check t.ndjson > b.out && cmp a.out b.out && echo same
  same

The validator flags unbalanced spans and out-of-order timestamps as
warnings (and in the JSON object), without failing the parse:

  $ printf '{"ts":0.1,"kind":"span_begin","id":1,"name":"a"}\n' > unbal.ndjson
  $ fecsynth trace check unbal.ndjson
  fecsynth: warning: 1 unbalanced span(s) (begin without end, or end without begin)
  ok: 1 events
  span_begin a                        1
  $ printf '{"ts":5.0,"kind":"event","name":"a"}\n{"ts":0.1,"kind":"event","name":"b"}\n' > ooo.ndjson
  $ fecsynth trace check --stats json ooo.ndjson 2>/dev/null | cut -c1-84
  {"command":"trace-check","events":2,"truncated_tail":false,"unbalanced_spans":0,"out
  $ fecsynth trace check ooo.ndjson 2>&1 >/dev/null
  fecsynth: warning: 1 event(s) go back in time within their worker stream

trace diff gates on metric regressions: exit 0 when within threshold,
exit 1 (with the offending metrics) when something regressed, and
--ignore drops noisy keys before judging:

  $ cat > BENCH_a.json <<'EOF'
  > {"pr":"a","scale":100,"instances":[
  >  {"experiment":"t1","instance":"md=4","wall_s":1.0,"iterations":100,"conflicts":50},
  >  {"experiment":"t1","instance":"md=5","wall_s":2.0,"iterations":200,"conflicts":80}]}
  > EOF
  $ cat > BENCH_b.json <<'EOF'
  > {"pr":"b","scale":100,"instances":[
  >  {"experiment":"t1","instance":"md=4","wall_s":1.05,"iterations":100,"conflicts":50},
  >  {"experiment":"t1","instance":"md=5","wall_s":2.0,"iterations":260,"conflicts":80}]}
  > EOF
  $ fecsynth trace diff --threshold 10 BENCH_a.json BENCH_b.json
  bench BENCH_a.json vs bench BENCH_b.json: 6 shared metrics (0 only in baseline, 0 only in candidate)
  regression   t1/md=5/iterations                                200 -> 260          +30.0%
  FAIL: 1 metric(s) regressed beyond 10.0%
  [1]
  $ fecsynth trace diff --threshold 50 BENCH_a.json BENCH_b.json
  bench BENCH_a.json vs bench BENCH_b.json: 6 shared metrics (0 only in baseline, 0 only in candidate)
  ok: no metric regressed beyond 50.0%
  $ fecsynth trace diff --threshold 10 --ignore iterations BENCH_a.json BENCH_b.json
  bench BENCH_a.json vs bench BENCH_b.json: 4 shared metrics (0 only in baseline, 0 only in candidate)
  ok: no metric regressed beyond 10.0%

Two traces diff too (the same trace never regresses against itself):

  $ fecsynth trace diff --threshold 10 t.ndjson t.ndjson | tail -1
  ok: no metric regressed beyond 10.0%

--progress degrades to silence when stderr is not a TTY (as here), so
piping output stays clean:

  $ fecsynth synth --progress --stats json -p 'len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' 2>err.log | tr '{,' '\n\n' | grep -o '"outcome":"synthesized"'
  "outcome":"synthesized"
  $ wc -c < err.log | tr -d ' '
  0
