The fecsynth run ledger: every synth/optimize/bench/analysis invocation
appends one versioned NDJSON record to FEC_LEDGER_DIR (default
.fecsynth/ledger), and the runs family reads the history back.

  $ export FEC_LEDGER_DIR=$PWD/led
  $ SPEC='len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3'
  $ WIDE='len_G = 1 && len_d(G[0]) = 5 && len_c(G[0]) = 4 && md(G[0]) = 3'

Opting out — by flag or by environment — leaves the ledger directory
untouched:

  $ fecsynth synth --no-ledger -p "$SPEC" > /dev/null
  $ FEC_NO_LEDGER=1 fecsynth synth -p "$SPEC" > /dev/null
  $ test ! -e led && echo untouched
  untouched

The opt-out also disarms the at_exit crash recorder: even a run that
dies before finishing must not create the ledger directory:

  $ fecsynth synth --no-ledger -p @/nonexistent/spec 2> /dev/null
  [2]
  $ FEC_NO_LEDGER=1 fecsynth synth -p @/nonexistent/spec 2> /dev/null
  [2]
  $ test ! -e led && echo untouched
  untouched

Three recorded runs: the same spec twice, then a different one:

  $ fecsynth synth -p "$SPEC" > /dev/null
  $ fecsynth synth -p "$SPEC" > /dev/null
  $ fecsynth synth -p "$WIDE" > /dev/null

runs list shows them oldest-first with positional ids; timestamps and
wall times vary run to run, everything else is stable:

  $ fecsynth runs list | awk 'NR>1 {print $1, $3, $4, $5}'
  1 synth synthesized 0
  2 synth synthesized 0
  3 synth synthesized 0

Filters: --problem matches by substring, --outcome and --subcommand
exactly; JSON mode tags the object:

  $ fecsynth runs list --problem 'len_c(G[0]) = 4' | awk 'NR>1 {print $1}'
  3
  $ fecsynth runs list --outcome timeout
  no recorded runs match
  $ fecsynth runs list --subcommand synth --stats json | grep -o '"command":"runs-list"'
  "command":"runs-list"

runs show resolves negative ids back from the newest record:

  $ fecsynth runs show -- -1 | head -4 | sed -E 's/at .*/at TS/; s/wall: .*/wall: W/'
  run 3: synth at TS
  outcome:  synthesized (exit 0)
  wall: W
  problem:  len_G = 1 && len_d(G[0]) = 5 && len_c(G[0]) = 4 && md(G[0]) = 3

  $ fecsynth runs show 99
  fecsynth: run id 99 out of range (the ledger holds 3 runs)
  [124]

runs compare reuses the trace-diff machinery; two runs of the same spec
agree on every deterministic metric, so only the clocks need ignoring:

  $ fecsynth runs compare --ignore wall_s --ignore elapsed_s 1 2 | sed -E 's/\(synth [^)]*\)/(synth TS)/g'
  run 1 (synth TS) vs run 2 (synth TS): 9 shared metrics (0 only in baseline, 0 only in candidate)
  ok: no metric regressed beyond 10.0%

runs trend groups points per (subcommand, problem, metric): the repeated
spec yields a two-point series, the other a single baseline point:

  $ fecsynth runs trend --metric wall_s --stats json | grep -o '"n":[0-9]*'
  "n":2
  "n":1
  $ fecsynth runs trend --metric wall_s --threshold 100000 | tail -1
  ok: no series regressed beyond 100000.0%

runs html renders a self-contained dashboard — inline CSS and SVG, no
external requests of any kind — and --check validates without writing:

  $ fecsynth runs html -o dash.html | sed -E 's/[0-9]+ bytes/N bytes/'
  wrote dash.html (3 runs, N bytes)
  $ fecsynth runs html --check | sed -E 's/[0-9]+ bytes/N bytes/'
  ok: dashboard well-formed (3 runs, N bytes)
  $ ! grep -qE 'https?://|@import|url\(|src=' dash.html && echo self-contained
  self-contained
  $ test "$(grep -o '<svg' dash.html | wc -l)" -ge 2 && echo has-charts
  has-charts

Failures are first-class ledger data — a run that dies on a bad property
still records an outcome:

  $ fecsynth synth -p 'garbage!!!'
  fecsynth: bad property: expected expression, found "garbage"
  [2]
  $ fecsynth runs list | awk 'END {print $1, $4, $5}'
  4 error 2

The version subcommand reports the same build identity the ledger embeds
in every record (the git line only appears inside a checkout, so it is
filtered here):

  $ fecsynth version | grep -v '^git: '
  fecsynth 1.0.0
  ocaml: 5.1.1
  features: portfolio telemetry metrics checkpoint fault-injection progress ledger runtime-lens
  $ fecsynth version --json | grep -o '"code_version":"1.0.0"'
  "code_version":"1.0.0"
  $ fecsynth --version
  1.0.0

Durability: records written by a newer format version are skipped with a
warning, and a torn final line (an interrupted append) is tolerated, not
fatal — the whole records before it still read back:

  $ echo '{"v":99,"ts":"2030-01-01T00:00:00Z","cmd":"synth","outcome":"future"}' >> led/runs.ndjson
  $ printf '{"v":1,"ts":"torn' >> led/runs.ndjson
  $ fecsynth runs list 2>&1 >/dev/null
  fecsynth: warning: final ledger line is truncated (interrupted append); ignored
  fecsynth: warning: skipped 1 record(s) written by a newer ledger format (this build reads v1 and older)
  $ fecsynth runs list 2>/dev/null | awk 'NR>1 {print $1}' | tail -1
  4

--progress is observable under a test harness via FEC_FORCE_TTY=1: the
sink draws carriage-return frames and finishes with a newline-terminated
final line; without the override a non-TTY stderr stays silent:

  $ FEC_NO_LEDGER=1 FEC_FORCE_TTY=1 fecsynth synth --progress -p "$SPEC" 2>prog.err >/dev/null
  $ tr '\r' '\n' < prog.err | tail -1 | grep -Ec '^\[it [0-9]+ \([0-9.]+/s\) \| .*[0-9.]+s\]$'
  1
  $ FEC_NO_LEDGER=1 fecsynth synth --progress -p "$SPEC" 2>prog2.err >/dev/null
  $ wc -c < prog2.err
  0
