Resilience features: anytime results, checkpoint/resume, graceful
interruption, fault injection, and distinct exit codes for every way a
run can stop (0 ok, 1 refuted, 2 error, 3 unsat, 4 timeout, 5 partial,
130 interrupted).

An unsatisfiable configuration exits 3:

  $ fecsynth synth -p 'len_d(G[0]) = 4 && len_c(G[0]) = 2 && md(G[0]) = 4'
  unsatisfiable: no check length in range admits the spec
  [3]

--checkpoint persists the learned counterexample pool as the search runs;
the format is a small versioned text file guarded by a CRC trailer:

  $ fecsynth synth -p 'len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' --checkpoint easy.ck | head -1
  synthesized (7,4) generator, md 3, 9 set bits:
  $ head -2 easy.ck
  fecsynth-checkpoint 1
  problem 4 3 3
  $ grep -c '^cex ' easy.ck
  10
  $ tail -1 easy.ck | sed 's/ .*/ (hex)/'
  crc (hex)

--resume replays the recovered pool before the first candidate is drawn,
so the warm run needs one iteration where the cold run needed ten:

  $ fecsynth synth -p 'len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' --resume easy.ck | sed 's/time: .*/(time)/' | sed -n '1p;2p;$p'
  resumed from checkpoint: 10 counterexamples, 10 prior iterations
  synthesized (7,4) generator, md 3, 9 set bits:
  iterations: 1, (time)

A corrupt or truncated checkpoint is detected and never trusted:

  $ printf 'garbage\n' > bad.ck
  $ fecsynth synth -p 'len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' --resume bad.ck
  fecsynth: error: cannot resume: corrupt checkpoint: missing crc trailer (truncated?)
  [2]

Ctrl-C mid-search exits 130 after flushing the checkpoint and printing
the best candidate found so far (the anytime result):

  $ HARD='len_d(G[0]) = 14 && len_c(G[0]) = 15 && md(G[0]) = 7'
  $ timeout --preserve-status -s INT 2 fecsynth synth -p "$HARD" --checkpoint hard.ck > interrupted.out
  [130]
  $ head -1 interrupted.out
  partial: interrupted before verification finished
  $ head -2 hard.ck
  fecsynth-checkpoint 1
  problem 14 15 7
  $ test "$(grep -c '^cex ' hard.ck)" -ge 1 && echo pool recovered
  pool recovered

The interrupted run resumes from the recovered pool (a short budget keeps
this test fast; exit 5 marks a partial result with a best-so-far candidate):

  $ fecsynth synth -p "$HARD" --resume hard.ck --checkpoint hard2.ck --timeout 2 > resumed.out
  [5]
  $ sed -n 's/resumed from checkpoint: [0-9]* counterexamples, [0-9]* prior iterations/resumed (counts elided)/p' resumed.out
  resumed (counts elided)
  $ grep -c '^partial: budget expired' resumed.out
  1

optimize walks check lengths downward-constrained and checkpoints the
proven lower bound alongside the pool, so resume restarts at the bound:

  $ fecsynth optimize -k 4 -m 3 --checkpoint opt.ck | head -1
  minimal check length 3: (7,4) generator, md 3:
  $ grep '^bound ' opt.ck
  bound 3
  $ fecsynth optimize -k 4 -m 3 --resume opt.ck | sed 's/time: .*/(time)/' | sed -n '1p;2p;$p'
  resumed from checkpoint: 16 counterexamples, 16 prior iterations, starting at check length 3
  minimal check length 3: (7,4) generator, md 3:
  iterations: 1, (time)

Fault injection is enabled only through FEC_FAULT_SPEC.  An injected
worker-startup crash is supervised, restarted, and the run still decides;
the per-worker report shows the crash/restart counters:

  $ FEC_FAULT_SPEC='seed=5,worker.start.crash=1.0:max=1' fecsynth synth --portfolio --jobs 2 -p 'len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' > faulty.out
  $ grep -c '^synthesized (7,4) generator, md 3' faulty.out
  1
  $ grep -c 'crashes=[1-9]' faulty.out
  1

A malformed fault spec is rejected up front rather than half-applied:

  $ FEC_FAULT_SPEC='sat.solve.explode=1' fecsynth synth -p 'len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3'
  fecsynth: error: FEC_FAULT_SPEC: unknown fault action "explode" (crash|stall|interrupt)
  [2]
