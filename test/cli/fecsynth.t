Exact minimum distance of catalog codes:

  $ fecsynth distance -c matrix:1000101-0100110-0010111-0001011
  (7,4) generator: minimum distance 3, 9 set bits, P_u(p=0.1) = 2.569e-02

  $ fecsynth distance -c parity:8
  (9,8) generator: minimum distance 2, 8 set bits, P_u(p=0.1) = 2.252e-01

Verification of the paper's (7,4) example (Fig. 2):

  $ fecsynth verify -c matrix:1000101-0100110-0010111-0001011 -p 'md(G[0]) = 3' | sed 's/(.*)/(time)/'
  VERIFIED (time)

  $ fecsynth verify -c matrix:1000101-0100110-0010111-0001011 -p 'md(G[0]) = 4' | sed 's/(.*)/(time)/'
  REFUTED (time)

The exit code reports refutation when not piped:

  $ fecsynth verify -c parity:8 -p 'md(G[0]) = 3' > /dev/null
  [1]

Synthesis of the paper's section 3.1 running example (minimal check bits
for md 3 at 4 data bits):

  $ fecsynth synth -p 'len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) <= 4 && md(G[0]) = 3 && minimal(len_c(G[0]))' | head -1
  synthesized (7,4) generator, md 3, 9 set bits:

Portfolio synthesis races configured workers and reports the winner; the
generator line and the per-worker report shape are stable even though the
winning worker is not:

  $ fecsynth synth --portfolio --jobs 2 -p 'len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' > portfolio.out
  $ grep -c '^portfolio: 2 workers' portfolio.out
  1
  $ grep -c '^winner: w[01](' portfolio.out
  1
  $ grep -c '<- decided' portfolio.out
  1
  $ grep -c '^synthesized (7,4) generator, md 3' portfolio.out
  1

--jobs 1 is the sequential configuration run through the portfolio path:

  $ fecsynth synth --portfolio --jobs 1 -p 'len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3' | grep -c '^winner: w0('
  1

Bad job counts are rejected:

  $ fecsynth synth --portfolio --jobs 0 -p 'md(G[0]) = 3'
  fecsynth: --jobs must be >= 1
  [124]

Emission produces C with the expected entry points:

  $ fecsynth emit -c parity:4 --lang c | grep -c 'fec_encode\|fec_syndrome'
  4

Malformed inputs are rejected with clean errors:

  $ fecsynth distance -c nonsense:4
  fecsynth: bad code descriptor: unknown code kind "nonsense"
  [2]

  $ fecsynth synth -p 'md(G[0]) = '
  fecsynth: bad property: expected expression, found "<end of input>"
  [2]

Certified verification with DRAT proof:

  $ fecsynth certify -c matrix:1000101-0100110-0010111-0001011 -m 3 | sed 's/(.*)/(time)/'
  CERTIFIED md >= 3 (time); DRAT proof: 9 steps, validated by the independent checker

  $ fecsynth certify -c parity:8 -m 3
  REFUTED: data word 00000001 encodes to codeword weight 2 < 3
  [1]

The built-in solver speaks the Boolean fragment of SMT-LIB v2:

  $ cat > script.smt2 <<'SMT'
  > (set-logic QF_UF)
  > (declare-const p Bool)
  > (assert p)
  > (check-sat)
  > (push 1)
  > (assert (not p))
  > (check-sat)
  > (pop 1)
  > (check-sat)
  > SMT
  $ fecsynth smt script.smt2
  sat
  unsat
  sat
