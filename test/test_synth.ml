(* Tests for the CEGIS synthesizer: fixed-configuration synthesis,
   check-length minimization (Table 1 rows at small scale), set-bit
   minimization, weighted mapping (§4.3), stand-alone verification (§4.1),
   and the property-language driver. *)

open Synth

let md = Hamming.Distance.min_distance

let synthesize_simple ?(timeout = 60.0) ?cex_mode ~k ~c ~m () =
  Cegis.synthesize ~timeout ?cex_mode
    { Cegis.data_len = k; check_len = c; min_distance = m; extra = [] }

(* ---------- core CEGIS loop ---------- *)

let test_synthesize_hamming74 () =
  match synthesize_simple ~k:4 ~c:3 ~m:3 () with
  | Report.Synthesized (code, stats) ->
      Alcotest.(check int) "md" 3 (md code);
      Alcotest.(check bool) "iterations > 0" true (stats.Report.Stats.iterations > 0)
  | _ -> Alcotest.fail "expected success"

let test_synthesize_md4 () =
  (* paper §4.2: md 4 achievable with 5 check bits at k = 4 *)
  match synthesize_simple ~k:4 ~c:5 ~m:4 () with
  | Report.Synthesized (code, _) -> Alcotest.(check bool) "md >= 4" true (md code >= 4)
  | _ -> Alcotest.fail "expected success"

let test_synthesize_parity () =
  (* paper §4.3: c=1, md 2 must produce exactly the even-parity code *)
  match synthesize_simple ~k:16 ~c:1 ~m:2 () with
  | Report.Synthesized (code, _) ->
      Alcotest.(check bool) "equals parity code" true
        (Hamming.Code.equal code (Hamming.Catalog.parity 16))
  | _ -> Alcotest.fail "expected success"

let test_unsat_config () =
  (* md 3 with 2 check bits at k = 4 is impossible (needs >= 3) *)
  match synthesize_simple ~k:4 ~c:2 ~m:3 () with
  | Report.Unsat_config _ -> ()
  | Report.Synthesized (code, _) ->
      Alcotest.failf "impossible generator synthesized with md %d" (md code)
  | Report.Timed_out _ -> Alcotest.fail "unexpected timeout"
  | Report.Partial _ -> Alcotest.fail "unexpected partial result"

let test_singleton_check_md2 () =
  (* smallest possible: k=1, c=1, md 2 is the repetition (2,1) code *)
  match synthesize_simple ~k:1 ~c:1 ~m:2 () with
  | Report.Synthesized (code, _) -> Alcotest.(check int) "md" 2 (md code)
  | _ -> Alcotest.fail "expected success"

let test_whole_candidate_mode_agrees () =
  (* the paper's blocking mode finds an answer too (just more slowly) *)
  match synthesize_simple ~cex_mode:Cegis.Whole_candidate ~k:4 ~c:3 ~m:3 () with
  | Report.Synthesized (code, _) -> Alcotest.(check int) "md" 3 (md code)
  | _ -> Alcotest.fail "expected success"

let test_sat_verifier_mode () =
  match
    Cegis.synthesize ~timeout:60.0 ~verifier:Cegis.Sat
      { Cegis.data_len = 4; check_len = 4; min_distance = 3; extra = [] }
  with
  | Report.Synthesized (code, _) -> Alcotest.(check bool) "md >= 3" true (md code >= 3)
  | _ -> Alcotest.fail "expected success"

let test_extra_constraints_respected () =
  (* pin a coefficient bit to 1 and check it survives synthesis *)
  let pin ~entry = entry ~row:0 ~col:0 in
  match
    Cegis.synthesize ~timeout:60.0
      { Cegis.data_len = 4; check_len = 4; min_distance = 3; extra = [ pin ] }
  with
  | Report.Synthesized (code, _) ->
      Alcotest.(check bool) "pinned bit" true
        (Gf2.Matrix.get (Hamming.Code.coefficient_matrix code) 0 0)
  | _ -> Alcotest.fail "expected success"

(* all synthesized generators across a small sweep have the target md *)
let test_sweep_configurations () =
  List.iter
    (fun (k, c, m) ->
      match synthesize_simple ~k ~c ~m () with
      | Report.Synthesized (code, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "k=%d c=%d m=%d" k c m)
            true
            (Hamming.Distance.has_min_distance_at_least code m)
      | Report.Unsat_config _ -> ()
      | Report.Timed_out _ | Report.Partial _ -> Alcotest.fail "timeout in sweep")
    [ (2, 2, 2); (3, 3, 3); (4, 4, 3); (5, 4, 3); (8, 4, 3); (6, 5, 4); (4, 7, 5) ]

(* ---------- optimization: minimal check length (Table 1) ---------- *)

let test_minimize_check_len_md3 () =
  match
    Optimize.minimize_check_len ~timeout:60.0 ~data_len:4 ~md:3 ~check_lo:2 ~check_hi:14 ()
  with
  | Report.Synthesized (r, _) ->
      Alcotest.(check int) "minimal check bits for md 3" 3 r.Optimize.check_len;
      Alcotest.(check int) "generator md" 3 (md r.Optimize.code)
  | _ -> Alcotest.fail "expected a generator"

let test_minimize_check_len_md2 () =
  match
    Optimize.minimize_check_len ~timeout:60.0 ~data_len:4 ~md:2 ~check_lo:2 ~check_hi:14 ()
  with
  | Report.Synthesized (r, _) ->
      Alcotest.(check int) "Table 1 row md=2" 2 r.Optimize.check_len
  | _ -> Alcotest.fail "expected a generator"

let test_minimize_check_len_md4 () =
  match
    Optimize.minimize_check_len ~timeout:120.0 ~data_len:4 ~md:4 ~check_lo:2 ~check_hi:14 ()
  with
  | Report.Synthesized (r, _) ->
      (* the paper's Table 1 reports 5 check bits for md 4, but the extended
         Hamming (8,4) code achieves md 4 with only 4 — our minimizer finds
         the true optimum *)
      Alcotest.(check int) "md=4 true optimum" 4 r.Optimize.check_len;
      Alcotest.(check int) "exact md" 4 (md r.Optimize.code)
  | _ -> Alcotest.fail "expected a generator"

(* ---------- optimization: minimal set bits (§4.4) ---------- *)

let test_minimize_set_bits_walk () =
  let steps =
    Optimize.minimize_set_bits ~timeout:60.0 ~data_len:8 ~check_len:4 ~md:3
      ~start_bound:32 ~stop_bound:0 ()
  in
  Alcotest.(check bool) "at least one step" true (List.length steps > 0);
  (* bounds strictly decrease and every generator meets md and its bound *)
  let rec check_desc = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "achieved decreases" true
          (b.Optimize.achieved < a.Optimize.achieved);
        check_desc rest
    | _ -> ()
  in
  check_desc steps;
  List.iter
    (fun s ->
      Alcotest.(check bool) "respects bound" true
        (Hamming.Code.set_bits s.Optimize.generator <= s.Optimize.bound);
      Alcotest.(check bool) "md holds" true
        (Hamming.Distance.has_min_distance_at_least s.Optimize.generator 3))
    steps;
  (* theoretical minimum for (12,8) md 3: every data column needs weight >= 2,
     so at least 16 set bits *)
  let last = List.nth steps (List.length steps - 1) in
  Alcotest.(check bool) "reached near-minimal" true (last.Optimize.achieved >= 16)

(* ---------- weighted mapping (§4.3) ---------- *)

let float_weights = [| 100; 100; 100; 100; 99; 98; 82; 45; 17; 17; 8; 4; 2; 1; 1; 1 |]

let test_weighted_prefers_strong_generator_for_heavy_bits () =
  let g0 = { Weighted.check_len = 5; min_distance = 3 } in
  let g1 = { Weighted.check_len = 1; min_distance = 2 } in
  match Weighted.optimize ~timeout:120.0 ~p:0.1 ~weights:float_weights g0 g1 with
  | None -> Alcotest.fail "expected a mapping"
  | Some r ->
      let t0, t1 = r.Weighted.counts in
      Alcotest.(check int) "all bits assigned" 16 (t0 + t1);
      (* heavy (high-weight) bits must go to the stronger generator 0 *)
      Alcotest.(check int) "heaviest bit on strong code" 0 r.Weighted.mapping.(0);
      (* the mapping's objective value is consistent *)
      Alcotest.(check (float 1e-9)) "sum_w consistent"
        (Weighted.sum_w_of ~p:0.1 ~weights:float_weights ~mapping:r.Weighted.mapping g0 g1)
        r.Weighted.sum_w;
      (* synthesized codes have the requested shapes *)
      let c0, c1 = r.Weighted.codes in
      Alcotest.(check int) "code0 data len" t0 (Hamming.Code.data_len c0);
      Alcotest.(check int) "code1 data len" t1 (Hamming.Code.data_len c1);
      Alcotest.(check bool) "code0 md" true (Hamming.Distance.has_min_distance_at_least c0 3);
      Alcotest.(check bool) "code1 md" true (Hamming.Distance.has_min_distance_at_least c1 2)

let test_weighted_optimal_against_bruteforce () =
  (* small instance: brute-force all mappings and compare objectives *)
  let weights = [| 9; 5; 3; 1 |] in
  let g0 = { Weighted.check_len = 3; min_distance = 3 } in
  let g1 = { Weighted.check_len = 1; min_distance = 2 } in
  let best = ref infinity in
  for mask = 1 to (1 lsl 4) - 2 do
    (* at least one bit on each generator *)
    let mapping = Array.init 4 (fun j -> if (mask lsr j) land 1 = 1 then 0 else 1) in
    let v = Weighted.sum_w_of ~p:0.1 ~weights ~mapping g0 g1 in
    if v < !best then best := v
  done;
  match Weighted.optimize ~timeout:60.0 ~p:0.1 ~weights g0 g1 with
  | None -> Alcotest.fail "expected a mapping"
  | Some r ->
      Alcotest.(check bool) "proved optimal" true r.Weighted.optimal;
      Alcotest.(check (float 1e-9)) "matches brute force" !best r.Weighted.sum_w

let test_weighted_rejects_bad_input () =
  let g = { Weighted.check_len = 1; min_distance = 2 } in
  Alcotest.check_raises "empty weights"
    (Invalid_argument "Weighted.optimize: empty weights") (fun () ->
      ignore (Weighted.optimize ~weights:[||] g g))

(* ---------- multi-bit-error synthesis (§6 extension) ---------- *)

let test_multibit_synthesis () =
  match
    Multibit_synth.synthesize ~timeout:60.0 ~data_len:4 ~check_len:7 ~distinguish:2 ()
  with
  | Report.Synthesized (code, _) ->
      Alcotest.(check bool) "distinguishes 2" true
        (Hamming.Multibit.distinguishes_up_to code 2);
      Alcotest.(check bool) "md >= 5" true
        (Hamming.Distance.has_min_distance_at_least code 5)
  | _ -> Alcotest.fail "expected success"

let test_multibit_beats_manual_construction () =
  (* the §6 manual matrix uses 11 check bits to distinguish 2-bit errors
     at data length 4; synthesis needs only 7 *)
  match
    Multibit_synth.minimize_check_len ~timeout:120.0 ~data_len:4 ~distinguish:2
      ~check_lo:2 ~check_hi:14 ()
  with
  | Some (code, checks, _) ->
      Alcotest.(check int) "minimal check bits" 7 checks;
      Alcotest.(check bool) "2-bit correction works" true
        (let w = Hamming.Code.encode code (Gf2.Bitvec.of_string "1010") in
         let w' = Gf2.Bitvec.copy w in
         Gf2.Bitvec.flip w' 0;
         Gf2.Bitvec.flip w' 6;
         match Hamming.Multibit.correct_up_to code 2 w' with
         | Some fixed -> Gf2.Bitvec.equal fixed w
         | None -> false)
  | None -> Alcotest.fail "expected a code"

let test_multibit_rejects_bad_input () =
  Alcotest.check_raises "distinguish 0"
    (Invalid_argument "Multibit_synth.synthesize: distinguish must be >= 1") (fun () ->
      ignore (Multibit_synth.synthesize ~data_len:4 ~check_len:4 ~distinguish:0 ()))

(* ---------- verifier conflict accounting ---------- *)

let test_ver_conflicts_reported () =
  (* regression: ver_conflicts was hardcoded to 0.  With the SAT verifier
     on an instance that needs several refinement rounds, the verifier
     must do real search, so the summed conflict count is positive. *)
  match
    Cegis.synthesize ~timeout:60.0 ~verifier:Cegis.Sat
      { Cegis.data_len = 6; check_len = 5; min_distance = 4; extra = [] }
  with
  | Report.Synthesized (code, stats) ->
      Alcotest.(check bool) "md >= 4" true
        (Hamming.Distance.has_min_distance_at_least code 4);
      Alcotest.(check bool) "verifier found counterexamples" true
        (stats.Report.Stats.verifier_calls > 1);
      Alcotest.(check bool)
        (Printf.sprintf "ver_conflicts > 0 (got %d)" stats.Report.Stats.ver_conflicts)
        true
        (stats.Report.Stats.ver_conflicts > 0)
  | _ -> Alcotest.fail "expected success"

(* ---------- portfolio ---------- *)

let simple_problem ~k ~c ~m =
  { Cegis.data_len = k; check_len = c; min_distance = m; extra = [] }

let test_portfolio_jobs1_matches_sequential () =
  (* worker 0 of the portfolio is configured exactly like the sequential
     defaults and runs inline, so the answers must be bit-identical *)
  let problem = simple_problem ~k:6 ~c:5 ~m:4 in
  match (Cegis.synthesize ~timeout:60.0 problem,
         Portfolio.synthesize ~timeout:60.0 ~jobs:1 problem) with
  | Report.Synthesized (seq_code, seq_stats),
    Report.Synthesized (par_code, report) ->
      Alcotest.(check bool) "identical generator" true
        (Hamming.Code.equal seq_code par_code);
      Alcotest.(check int) "identical iteration count"
        seq_stats.Report.Stats.iterations
        report.Portfolio.totals.Synth.Report.Stats.iterations;
      (match report.Portfolio.winner with
      | Some c -> Alcotest.(check string) "winner is worker 0" "w0" c.Portfolio.label
      | None -> Alcotest.fail "expected a winner")
  | _ -> Alcotest.fail "expected success on both paths"

let test_portfolio_jobs4_no_torn_results () =
  (* whatever worker wins and however domains interleave, the returned
     generator must verify; force the domain scheduler so this path is
     exercised even on single-core hosts *)
  List.iter
    (fun (k, c, m) ->
      match
        Portfolio.synthesize ~timeout:60.0 ~jobs:4 ~scheduler:`Domains
          (simple_problem ~k ~c ~m)
      with
      | Report.Synthesized (code, report) ->
          Alcotest.(check int) "4 workers" 4 (List.length report.Portfolio.workers);
          Alcotest.(check bool) "winner recorded" true
            (report.Portfolio.winner <> None);
          Alcotest.(check bool)
            (Printf.sprintf "k=%d c=%d m=%d verifies" k c m)
            true
            (Hamming.Distance.counterexample code m = None)
      | Report.Unsat_config _ -> Alcotest.fail "unexpectedly unsat"
      | Report.Timed_out _ | Report.Partial _ ->
          Alcotest.fail "unexpected timeout")
    [ (4, 4, 3); (6, 5, 4); (8, 4, 3) ]

let test_portfolio_unsat_is_shared () =
  (* any single worker proving unsat decides for the whole portfolio *)
  match Portfolio.synthesize ~timeout:60.0 ~jobs:4 (simple_problem ~k:4 ~c:2 ~m:3) with
  | Report.Unsat_config report ->
      Alcotest.(check bool) "winner recorded" true (report.Portfolio.winner <> None)
  | Report.Synthesized (code, _) ->
      Alcotest.failf "impossible generator synthesized with md %d" (md code)
  | Report.Timed_out _ | Report.Partial _ ->
      Alcotest.fail "unexpected timeout"

let test_portfolio_encodings_agree_on_distance () =
  (* one single-worker portfolio per cardinality encoding: all must reach
     the same verified minimum distance ((7,4) admits exactly md 3) *)
  let mds =
    List.map
      (fun encoding ->
        let config =
          { Portfolio.label = "w0"; cex_mode = Cegis.Data_word;
            verifier = Cegis.Combinatorial; encoding; seed = None }
        in
        match
          Portfolio.synthesize ~timeout:60.0 ~jobs:1 ~configs:[ config ]
            (simple_problem ~k:4 ~c:3 ~m:3)
        with
        | Report.Synthesized (code, _) -> md code
        | _ -> Alcotest.fail "expected success")
      [ Smtlite.Card.Sequential; Smtlite.Card.Totalizer; Smtlite.Card.Adder;
        Smtlite.Card.Pairwise ]
  in
  List.iter (fun d -> Alcotest.(check int) "verified min distance" 3 d) mds

let test_portfolio_restart_rounds () =
  (* a 10 ms restart interval forces several reseeded rounds on an
     instance that takes hundreds of ms with four timeshared workers; the
     pool carries over, the result must still verify and the report must
     show the extra rounds with reseeded labels *)
  match
    Portfolio.synthesize ~timeout:60.0 ~jobs:4 ~restart_interval:0.01
      (simple_problem ~k:9 ~c:10 ~m:5)
  with
  | Report.Synthesized (code, report) ->
      Alcotest.(check bool) "restarted at least once" true
        (report.Portfolio.rounds >= 2);
      Alcotest.(check int) "one stats entry per worker per round"
        (4 * report.Portfolio.rounds)
        (List.length report.Portfolio.workers);
      Alcotest.(check bool) "restarted workers are relabelled" true
        (List.exists
           (fun w ->
             String.contains w.Portfolio.config.Portfolio.label 'r')
           report.Portfolio.workers);
      Alcotest.(check bool) "result verifies" true
        (Hamming.Distance.counterexample code 5 = None)
  | Report.Unsat_config _ -> Alcotest.fail "unexpectedly unsat"
  | Report.Timed_out _ | Report.Partial _ ->
      Alcotest.fail "unexpected timeout"

let test_portfolio_verification_race () =
  let code = Lazy.force Hamming.Catalog.fig2_7_4 in
  (match Portfolio.verify_min_distance ~timeout:60.0 ~jobs:4 code 3 with
  | Portfolio.Holds, winner, _ ->
      Alcotest.(check bool) "winner named" true (winner <> "-")
  | _ -> Alcotest.fail "md >= 3 should hold");
  match Portfolio.verify_min_distance ~timeout:60.0 ~jobs:4 code 4 with
  | Portfolio.Refuted d, _, _ ->
      Alcotest.(check bool) "witness weight < 4" true
        (Gf2.Bitvec.popcount (Hamming.Code.encode code d) < 4)
  | _ -> Alcotest.fail "md >= 4 should be refuted"

(* ---------- stand-alone verification (§4.1) ---------- *)

let test_verify_ieee_md3 () =
  let code = Lazy.force Hamming.Catalog.ieee_128_120 in
  let r = Verify.min_distance_at_least ~method_:Verify.Sat code 3 in
  Alcotest.(check bool) "md >= 3 holds" true r.Verify.holds;
  let r4 = Verify.min_distance_at_least ~method_:Verify.Sat code 4 in
  Alcotest.(check bool) "md >= 4 fails" false r4.Verify.holds;
  (match r4.Verify.witness with
  | Some d ->
      Alcotest.(check bool) "witness weight < 4" true
        (Gf2.Bitvec.popcount (Hamming.Code.encode code d) < 4)
  | None -> Alcotest.fail "expected witness");
  let exact = Verify.min_distance_exactly ~method_:Verify.Combinatorial code 3 in
  Alcotest.(check bool) "md exactly 3" true exact.Verify.holds

let test_verify_property_language () =
  let env = Spec.Eval.env_of_code (Lazy.force Hamming.Catalog.fig2_7_4) in
  let r = Verify.property env (Spec.Parse.prop "md(G[0]) = 3 && len_c(G[0]) = 3") in
  Alcotest.(check bool) "holds" true r.Verify.holds;
  let r2 = Verify.property env (Spec.Parse.prop "md(G[0]) = 4") in
  Alcotest.(check bool) "fails" false r2.Verify.holds

(* ---------- property-language driver ---------- *)

let test_driver_paper_example () =
  let prop =
    Spec.Parse.prop
      "len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) <= 4 && md(G[0]) = 3 && \
       minimal(len_c(G[0]))"
  in
  (match Driver.analyze prop with
  | Ok (Driver.Min_check_len s) ->
      Alcotest.(check int) "data len" 4 s.Driver.data_len;
      Alcotest.(check int) "hi" 4 s.Driver.check_hi
  | Ok _ -> Alcotest.fail "wrong task"
  | Error e -> Alcotest.fail e);
  match Driver.run ~timeout:60.0 prop with
  | Driver.Codes ([ code ], _) ->
      Alcotest.(check int) "md" 3 (md code);
      Alcotest.(check int) "minimal check len" 3 (Hamming.Code.check_len code)
  | _ -> Alcotest.fail "expected one generator"

let test_driver_fixed_entry () =
  let prop =
    Spec.Parse.prop "len_d(G[0]) = 4 && len_c(G[0]) = 4 && md(G[0]) = 3 && G[0](0, 4) = 1"
  in
  match Driver.run ~timeout:60.0 prop with
  | Driver.Codes ([ code ], _) ->
      Alcotest.(check bool) "entry honored" true
        (Gf2.Matrix.get (Hamming.Code.generator code) 0 4)
  | _ -> Alcotest.fail "expected one generator"

let test_driver_weighted () =
  let prop =
    Spec.Parse.prop
      "len_G = 2 && len_c(G[0]) = 5 && md(G[0]) = 3 && len_c(G[1]) = 1 && md(G[1]) = 2 \
       && minimal(sum_w)"
  in
  match Driver.run ~timeout:120.0 ~weights:float_weights prop with
  | Driver.Weighted_result r ->
      let t0, t1 = r.Weighted.counts in
      Alcotest.(check int) "all bits" 16 (t0 + t1)
  | _ -> Alcotest.fail "expected weighted result"

let test_driver_maximal_md () =
  (* with 4 data bits and exactly 7 check bits, distance 5 is reachable
     (Table 1) but 6 is not *)
  let prop =
    Spec.Parse.prop
      "len_d(G[0]) = 4 && len_c(G[0]) = 7 && md(G[0]) >= 2 && maximal(md(G[0]))"
  in
  (match Driver.analyze prop with
  | Ok (Driver.Max_distance _) -> ()
  | Ok _ -> Alcotest.fail "wrong task"
  | Error e -> Alcotest.fail e);
  match Driver.run ~timeout:120.0 prop with
  | Driver.Codes ([ code ], _) ->
      Alcotest.(check int) "maximal distance" 5 (md code)
  | _ -> Alcotest.fail "expected one generator"

let test_driver_rejects_unsupported () =
  List.iter
    (fun src ->
      match Driver.analyze (Spec.Parse.prop src) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should be unsupported" src)
    [
      "md(G[0]) = 3 || md(G[0]) = 4";
      "len_d(G[0]) = 4";
      "len_G = 3 && minimal(sum_w)";
      "len_d(G[0]) = 4 && md(G[0]) = 3 && maximal(len_c(G[0]))";
    ]

let test_driver_reports_unsat () =
  let prop = Spec.Parse.prop "len_d(G[0]) = 4 && len_c(G[0]) = 2 && md(G[0]) = 3" in
  match Driver.run ~timeout:30.0 prop with
  | Driver.Unsat _ -> ()
  | _ -> Alcotest.fail "expected unsat"

let () =
  Alcotest.run "synth"
    [
      ( "cegis",
        [
          Alcotest.test_case "hamming (7,4)" `Quick test_synthesize_hamming74;
          Alcotest.test_case "md 4 (paper G_5^4 shape)" `Quick test_synthesize_md4;
          Alcotest.test_case "parity rediscovered" `Quick test_synthesize_parity;
          Alcotest.test_case "unsat configuration" `Quick test_unsat_config;
          Alcotest.test_case "repetition (2,1)" `Quick test_singleton_check_md2;
          Alcotest.test_case "whole-candidate blocking" `Quick test_whole_candidate_mode_agrees;
          Alcotest.test_case "SAT verifier mode" `Quick test_sat_verifier_mode;
          Alcotest.test_case "extra constraints" `Quick test_extra_constraints_respected;
          Alcotest.test_case "configuration sweep" `Slow test_sweep_configurations;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "minimal check len md 3" `Quick test_minimize_check_len_md3;
          Alcotest.test_case "minimal check len md 2" `Quick test_minimize_check_len_md2;
          Alcotest.test_case "minimal check len md 4" `Slow test_minimize_check_len_md4;
          Alcotest.test_case "set-bit minimization walk" `Slow test_minimize_set_bits_walk;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "float32 weights split" `Slow
            test_weighted_prefers_strong_generator_for_heavy_bits;
          Alcotest.test_case "optimal vs brute force" `Quick
            test_weighted_optimal_against_bruteforce;
          Alcotest.test_case "input validation" `Quick test_weighted_rejects_bad_input;
        ] );
      ( "multibit-synth",
        [
          Alcotest.test_case "synthesize 2-distinguishing" `Quick test_multibit_synthesis;
          Alcotest.test_case "beats manual §6 matrix" `Slow test_multibit_beats_manual_construction;
          Alcotest.test_case "input validation" `Quick test_multibit_rejects_bad_input;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "ver_conflicts reported" `Quick test_ver_conflicts_reported;
          Alcotest.test_case "jobs=1 matches sequential" `Quick
            test_portfolio_jobs1_matches_sequential;
          Alcotest.test_case "jobs=4 no torn results" `Slow
            test_portfolio_jobs4_no_torn_results;
          Alcotest.test_case "unsat decides the race" `Quick
            test_portfolio_unsat_is_shared;
          Alcotest.test_case "restart rounds carry the pool" `Slow
            test_portfolio_restart_rounds;
          Alcotest.test_case "encodings agree on distance" `Quick
            test_portfolio_encodings_agree_on_distance;
          Alcotest.test_case "verification race" `Quick
            test_portfolio_verification_race;
        ] );
      ( "verify",
        [
          Alcotest.test_case "ieee (128,120) §4.1" `Slow test_verify_ieee_md3;
          Alcotest.test_case "property language" `Quick test_verify_property_language;
        ] );
      ( "driver",
        [
          Alcotest.test_case "paper §3.1 example" `Quick test_driver_paper_example;
          Alcotest.test_case "pinned entry" `Quick test_driver_fixed_entry;
          Alcotest.test_case "weighted dispatch" `Slow test_driver_weighted;
          Alcotest.test_case "maximal(md)" `Quick test_driver_maximal_md;
          Alcotest.test_case "unsupported shapes" `Quick test_driver_rejects_unsupported;
          Alcotest.test_case "unsat reported" `Quick test_driver_reports_unsat;
        ] );
    ]
