(* Tests for the telemetry subsystem: span bookkeeping, sink aggregation,
   NDJSON well-formedness, the Report.Stats merge monoid, and the presence
   of the instrumentation events the CLI trace contract promises. *)

module T = Telemetry
module Sink = Telemetry.Sink
module J = Telemetry.Json
module Stats = Synth.Report.Stats

(* ---------------------------------------------------------------- *)
(* enabled / with_sink basics                                        *)
(* ---------------------------------------------------------------- *)

let test_enabled_toggle () =
  Alcotest.(check bool) "disabled by default" false (T.enabled ());
  let saw = ref false in
  T.with_sink Sink.null (fun () -> saw := T.enabled ());
  Alcotest.(check bool) "enabled inside with_sink" true !saw;
  Alcotest.(check bool) "restored after with_sink" false (T.enabled ())

let test_with_sink_restores_on_exn () =
  (try T.with_sink Sink.null (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after exception" false (T.enabled ())

let test_disabled_is_inert () =
  (* instrumentation points must be safe no-ops with no sink installed *)
  let sp = T.begin_span "nothing" in
  T.end_span sp;
  T.counter "c" 1;
  T.gauge "g" 1.0;
  T.point "p";
  T.span "s" (fun () -> ())

(* ---------------------------------------------------------------- *)
(* span nesting via the memory sink                                  *)
(* ---------------------------------------------------------------- *)

let test_span_nesting () =
  let sink, events = Sink.memory () in
  T.with_sink sink (fun () ->
      T.span "outer" (fun () ->
          T.span "inner" (fun () -> T.point "leaf");
          T.span "inner2" (fun () -> ())));
  let evs = events () in
  let begins =
    List.filter_map
      (function Sink.Span_begin b -> Some (b.name, b.id, b.parent) | _ -> None)
      evs
  in
  (match begins with
  | [ ("outer", outer_id, outer_parent); ("inner", _, p1); ("inner2", _, p2) ] ->
      Alcotest.(check (option int)) "outer has no parent" None outer_parent;
      Alcotest.(check (option int)) "inner nested in outer" (Some outer_id) p1;
      Alcotest.(check (option int)) "inner2 nested in outer" (Some outer_id) p2
  | _ -> Alcotest.failf "unexpected span_begin sequence (%d begins)"
           (List.length begins));
  let ends =
    List.filter_map (function Sink.Span_end e -> Some e.name | _ -> None) evs
  in
  Alcotest.(check (list string))
    "inner spans end before outer" [ "inner"; "inner2"; "outer" ] ends;
  List.iter
    (function
      | Sink.Span_end e ->
          if e.dur < 0.0 then Alcotest.failf "negative duration on %s" e.name
      | _ -> ())
    evs

let test_span_ids_unique () =
  let sink, events = Sink.memory () in
  T.with_sink sink (fun () ->
      for _ = 1 to 5 do
        T.span "s" (fun () -> ())
      done);
  let ids =
    List.filter_map
      (function Sink.Span_begin b -> Some b.id | _ -> None)
      (events ())
  in
  Alcotest.(check int) "five spans" 5 (List.length ids);
  Alcotest.(check int) "ids all distinct" 5
    (List.length (List.sort_uniq compare ids))

let test_span_exception_still_ends () =
  let sink, events = Sink.memory () in
  T.with_sink sink (fun () ->
      try T.span "failing" (fun () -> failwith "boom") with Failure _ -> ());
  let ends =
    List.filter_map (function Sink.Span_end e -> Some e.name | _ -> None)
      (events ())
  in
  Alcotest.(check (list string)) "span ended despite exception" [ "failing" ] ends

(* ---------------------------------------------------------------- *)
(* counter/gauge merging via the summary sink                        *)
(* ---------------------------------------------------------------- *)

let test_summary_merging () =
  let sink, read = Sink.summary () in
  T.with_sink sink (fun () ->
      T.counter "apples" 2;
      T.counter "apples" 3;
      T.counter "pears" 1;
      T.gauge "level" 1.5;
      T.gauge "level" 2.5;
      T.point "tick";
      T.point "tick";
      T.span "work" (fun () -> ());
      T.span "work" (fun () -> ()));
  let s = read () in
  Alcotest.(check (list (pair string int)))
    "counters summed" [ ("apples", 5); ("pears", 1) ] s.Sink.counters;
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauge keeps last" [ ("level", 2.5) ] s.Sink.gauges;
  Alcotest.(check (list (pair string int)))
    "points counted" [ ("tick", 2) ] s.Sink.points;
  (match s.Sink.spans with
  | [ ("work", (2, total)) ] ->
      if total < 0.0 then Alcotest.fail "negative total span duration"
  | _ -> Alcotest.fail "expected one span row with count 2")

(* ---------------------------------------------------------------- *)
(* NDJSON sink well-formedness                                       *)
(* ---------------------------------------------------------------- *)

let collect_ndjson f =
  let buf = Buffer.create 4096 in
  T.with_sink (Sink.ndjson_writer (Buffer.add_string buf)) f;
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")

let test_ndjson_every_line_parses () =
  let lines =
    collect_ndjson (fun () ->
        T.span "outer" ~fields:[ ("k", T.int 1) ] (fun () ->
            T.counter "c" 7 ~fields:[ ("enc", T.str "seq") ];
            T.gauge "g" 3.25;
            T.point "p" ~fields:[ ("ok", T.bool true); ("w", T.float 0.5) ]))
  in
  Alcotest.(check int) "five events" 5 (List.length lines);
  List.iteri
    (fun i line ->
      let j =
        try J.of_string line
        with J.Parse_error m -> Alcotest.failf "line %d unparseable: %s" i m
      in
      let str_field k =
        match Option.bind (J.member k j) J.to_string_opt with
        | Some s -> s
        | None -> Alcotest.failf "line %d missing string %S" i k
      in
      ignore (str_field "kind");
      ignore (str_field "name");
      match Option.bind (J.member "ts" j) J.to_float with
      | Some ts when ts >= 0.0 -> ()
      | _ -> Alcotest.failf "line %d missing numeric ts" i)
    lines

let test_ndjson_roundtrips_fields () =
  let lines =
    collect_ndjson (fun () ->
        T.point "probe"
          ~fields:
            [ ("s", T.str "a\"b\nc"); ("i", T.int (-3)); ("f", T.float 1.5);
              ("b", T.bool false) ])
  in
  match lines with
  | [ line ] ->
      let j = J.of_string line in
      Alcotest.(check (option string))
        "escaped string" (Some "a\"b\nc")
        (Option.bind (J.member "s" j) J.to_string_opt);
      Alcotest.(check (option int))
        "negative int" (Some (-3))
        (Option.bind (J.member "i" j) J.to_int);
      Alcotest.(check (option (float 1e-9)))
        "float" (Some 1.5)
        (Option.bind (J.member "f" j) J.to_float);
      Alcotest.(check (option string)) "kind" (Some "event")
        (Option.bind (J.member "kind" j) J.to_string_opt)
  | _ -> Alcotest.fail "expected exactly one line"

(* ---------------------------------------------------------------- *)
(* ambient span context                                              *)
(* ---------------------------------------------------------------- *)

let point_fields name evs =
  match
    List.find_map
      (function
        | Sink.Point p when p.name = name -> Some p.fields | _ -> None)
      evs
  with
  | Some fs -> fs
  | None -> Alcotest.failf "no point %S in trace" name

let test_context_stamps_events () =
  let sink, events = Sink.memory () in
  T.with_sink sink (fun () ->
      T.with_context [ ("request", T.str "r1") ] (fun () ->
          T.point "inside" ~fields:[ ("k", T.int 1) ];
          T.with_context [ ("worker", T.str "3") ] (fun () ->
              T.point "nested");
          T.point "after"));
  let evs = events () in
  let inside = point_fields "inside" evs in
  Alcotest.(check bool) "explicit field kept" true
    (List.mem_assoc "k" inside);
  Alcotest.(check bool) "context stamped" true
    (List.mem_assoc "request" inside);
  let nested = point_fields "nested" evs in
  Alcotest.(check bool) "inner context stamped" true
    (List.mem_assoc "worker" nested);
  Alcotest.(check bool) "outer context survives nesting" true
    (List.mem_assoc "request" nested);
  let after = point_fields "after" evs in
  Alcotest.(check bool) "inner context popped" false
    (List.mem_assoc "worker" after);
  Alcotest.(check bool) "outer context still present" true
    (List.mem_assoc "request" after);
  Alcotest.(check int) "context empty outside scope" 0
    (List.length (T.current_context ()))

let test_context_explicit_wins () =
  let sink, events = Sink.memory () in
  T.with_sink sink (fun () ->
      T.with_context [ ("request", T.str "ambient") ] (fun () ->
          T.point "p" ~fields:[ ("request", T.str "explicit") ]));
  match List.assoc_opt "request" (point_fields "p" (events ())) with
  | Some (Sink.Str "explicit") -> ()
  | _ -> Alcotest.fail "explicit field must shadow the ambient context"

let test_context_restored_on_exn () =
  (try T.with_context [ ("a", T.int 1) ] (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "context restored after exception" 0
    (List.length (T.current_context ()))

let test_context_crosses_spawn_when_reinstalled () =
  (* context is per-domain; the documented pattern is to capture it in
     the parent and reinstall in the child (as the portfolio does) *)
  T.with_context [ ("request", T.str "r9") ] (fun () ->
      let ctx = T.current_context () in
      let child =
        Domain.spawn (fun () ->
            let bare = T.current_context () in
            let installed =
              T.with_context ctx (fun () -> T.current_context ())
            in
            (bare, installed))
      in
      let bare, installed = Domain.join child in
      Alcotest.(check int) "fresh domain starts with empty context" 0
        (List.length bare);
      Alcotest.(check bool) "reinstalled context visible in child" true
        (List.mem_assoc "request" installed))

(* ---------------------------------------------------------------- *)
(* flight recorder                                                   *)
(* ---------------------------------------------------------------- *)

let with_tmpdir f =
  let dir = Filename.temp_file "fec_flight" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> Sys.remove (Filename.concat dir n))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_flight_roundtrip () =
  with_tmpdir (fun dir ->
      T.Flight.enable ~capacity:4 ~dir ();
      Fun.protect ~finally:T.Flight.disable (fun () ->
          Alcotest.(check bool) "enabled" true (T.Flight.enabled ());
          T.with_sink
            (Sink.tee [ T.Flight.sink () ])
            (fun () ->
              for i = 1 to 10 do
                T.point "tick" ~fields:[ ("i", T.int i) ]
              done);
          let snap = T.Flight.snapshot () in
          Alcotest.(check int) "ring keeps last capacity events" 4
            (List.length snap);
          let is_ =
            List.filter_map
              (function
                | Sink.Point p -> (
                    match List.assoc_opt "i" p.fields with
                    | Some (Sink.Int i) -> Some i
                    | _ -> None)
                | _ -> None)
              snap
          in
          Alcotest.(check (list int))
            "most recent events survive" [ 7; 8; 9; 10 ] is_;
          match
            T.Flight.dump ~reason:"test"
              ~fields:[ ("request", T.str "r1") ]
              ()
          with
          | None -> Alcotest.fail "dump returned no path while enabled"
          | Some path ->
              Alcotest.(check bool) "postmortem filename" true
                (Filename.check_suffix path ".ndjson");
              let lines = read_lines path in
              Alcotest.(check int) "snapshot + trailing dump point" 5
                (List.length lines);
              List.iteri
                (fun i l ->
                  try ignore (J.of_string l)
                  with J.Parse_error m ->
                    Alcotest.failf "postmortem line %d unparseable: %s" i m)
                lines;
              let last = J.of_string (List.nth lines 4) in
              Alcotest.(check (option string))
                "trailing point name" (Some "flight.dump")
                (Option.bind (J.member "name" last) J.to_string_opt);
              Alcotest.(check (option string))
                "reason stamped" (Some "test")
                (Option.bind (J.member "reason" last) J.to_string_opt);
              Alcotest.(check (option string))
                "caller fields stamped" (Some "r1")
                (Option.bind (J.member "request" last) J.to_string_opt)))

let test_flight_disabled_noop () =
  Alcotest.(check bool) "disabled by default" false (T.Flight.enabled ());
  T.Flight.record (Sink.Point { ts = 0.0; name = "p"; fields = [] });
  Alcotest.(check int) "snapshot empty when disabled" 0
    (List.length (T.Flight.snapshot ()));
  Alcotest.(check bool) "dump refuses when disabled" true
    (T.Flight.dump ~reason:"x" () = None)

let test_flight_disabled_allocates_nothing () =
  let ev = Sink.Point { ts = 0.0; name = "p"; fields = [] } in
  T.Flight.record ev;
  (* warm-up *)
  let rounds = 10_000 in
  let before = Gc.minor_words () in
  for _ = 1 to rounds do
    T.Flight.record ev
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 100.0 then
    Alcotest.failf
      "disabled flight recorder allocated %.0f minor words over %d records"
      delta rounds

(* two domains dumping at the same instant must land in two distinct,
   individually parseable postmortem files (the sequence number is
   mutex-guarded; the ring reads are racy by design but each line must
   still parse) *)
let test_flight_concurrent_dumps () =
  with_tmpdir (fun dir ->
      T.Flight.enable ~capacity:8 ~dir ();
      Fun.protect ~finally:T.Flight.disable (fun () ->
          T.with_sink
            (Sink.tee [ T.Flight.sink () ])
            (fun () ->
              for i = 1 to 5 do
                T.point "tick" ~fields:[ ("i", T.int i) ]
              done);
          let barrier = Atomic.make 0 in
          let dump tag () =
            Atomic.incr barrier;
            while Atomic.get barrier < 2 do
              Domain.cpu_relax ()
            done;
            T.Flight.dump ~reason:tag ()
          in
          let d1 = Domain.spawn (dump "d1") in
          let d2 = Domain.spawn (dump "d2") in
          match (Domain.join d1, Domain.join d2) with
          | Some a, Some b ->
              Alcotest.(check bool) "two distinct postmortem files" true
                (a <> b);
              List.iter
                (fun path ->
                  let lines = read_lines path in
                  Alcotest.(check bool)
                    (path ^ " non-empty") true (lines <> []);
                  List.iteri
                    (fun i l ->
                      try ignore (J.of_string l)
                      with J.Parse_error m ->
                        Alcotest.failf "%s line %d unparseable: %s" path i m)
                    lines)
                [ a; b ]
          | _ -> Alcotest.fail "a concurrent dump returned no path"))

(* ---------------------------------------------------------------- *)
(* runtime lens                                                      *)
(* ---------------------------------------------------------------- *)

(* the lens-off fast path is one atomic load: polled from the serve
   select loop and the observability tee, it must never allocate *)
let test_runtime_disabled_allocates_nothing () =
  Alcotest.(check bool) "inactive by default" false (T.Runtime.active ());
  T.Runtime.tick ();
  (* warm-up *)
  let rounds = 10_000 in
  let before = Gc.minor_words () in
  for _ = 1 to rounds do
    T.Runtime.tick ();
    T.Runtime.poll ();
    T.Runtime.set_request None
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 100.0 then
    Alcotest.failf
      "disabled runtime lens allocated %.0f minor words over %d ticks" delta
      rounds;
  Alcotest.(check bool) "snapshot refuses when inactive" true
    (T.Runtime.snapshot () = None)

(* live smoke: start the lens, churn the minor heap, force a poll and
   check that collections were observed and a runtime.gc interval point
   reached the sink *)
let test_runtime_lens_smoke () =
  let sink, events = Sink.memory () in
  T.Runtime.start ~min_interval:0.0 ~pause_threshold_us:0 ();
  if not (T.Runtime.active ()) then
    (* Runtime_events unavailable in this environment: start is
       specified to degrade to inactive, which is itself the contract *)
    ()
  else
    Fun.protect ~finally:T.Runtime.stop (fun () ->
        let snap =
          T.with_sink sink (fun () ->
              let keep = ref [] in
              for i = 1 to 300_000 do
                keep := (i, string_of_int i) :: !keep;
                if i mod 50_000 = 0 then keep := []
              done;
              Gc.minor ();
              T.Runtime.poll ~force:true ();
              T.Runtime.snapshot ())
        in
        match snap with
        | None -> Alcotest.fail "snapshot None while active"
        | Some s ->
            Alcotest.(check bool) "observed at least one domain" true
              (s.T.Runtime.domains >= 1);
            Alcotest.(check bool) "observed minor collections" true
              (s.T.Runtime.minor_n > 0);
            Alcotest.(check bool) "observed allocation" true
              (s.T.Runtime.alloc_words > 0);
            let names =
              List.sort_uniq compare (List.map Sink.event_name (events ()))
            in
            Alcotest.(check bool) "runtime.gc interval point emitted" true
              (List.mem "runtime.gc" names))

(* ---------------------------------------------------------------- *)
(* Report.Stats merge monoid (property tests)                        *)
(* ---------------------------------------------------------------- *)

(* elapsed uses integral values so float addition is exact and
   associativity can be checked with (=) *)
let stats_gen =
  QCheck.Gen.(
    map
      (fun ((a, b, c, d, e), (f, g), samples) ->
        { Stats.iterations = a; verifier_calls = b; elapsed = float_of_int c;
          syn_conflicts = d; ver_conflicts = e; worker_crashes = f;
          worker_restarts = g;
          learnt_hist = Telemetry.Metrics.Hist.of_list samples })
      (triple
         (tup5 (int_bound 10000) (int_bound 10000) (int_bound 10000)
            (int_bound 10000) (int_bound 10000))
         (pair (int_bound 100) (int_bound 100))
         (list_size (int_bound 6) (int_bound 500))))

let stats_arb =
  QCheck.make stats_gen ~print:(fun s -> Format.asprintf "%a" Stats.pp s)

let test_stats_add_assoc =
  QCheck.Test.make ~name:"Stats.add associative" ~count:200
    (QCheck.triple stats_arb stats_arb stats_arb)
    (fun (a, b, c) ->
      Stats.add (Stats.add a b) c = Stats.add a (Stats.add b c))

let test_stats_zero_identity =
  QCheck.Test.make ~name:"Stats.zero identity" ~count:200 stats_arb (fun s ->
      Stats.add Stats.zero s = s && Stats.add s Stats.zero = s)

let test_stats_sum_matches_fold =
  QCheck.Test.make ~name:"Stats.sum = fold add zero" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_bound 8) stats_arb) (fun l ->
      Stats.sum l = List.fold_left Stats.add Stats.zero l)

(* ---------------------------------------------------------------- *)
(* CEGIS instrumentation contract                                    *)
(* ---------------------------------------------------------------- *)

let test_cegis_event_kinds () =
  let sink, events = Sink.memory () in
  let outcome =
    T.with_sink sink (fun () ->
        Synth.Cegis.synthesize ~timeout:30.0
          { Synth.Cegis.data_len = 4; check_len = 3; min_distance = 3;
            extra = [] })
  in
  (match outcome with
  | Synth.Report.Synthesized _ -> ()
  | _ -> Alcotest.fail "expected (7,4)-style instance to synthesize");
  let names =
    List.sort_uniq compare (List.map Sink.event_name (events ()))
  in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then
        Alcotest.failf "trace missing %S (got: %s)" expected
          (String.concat ", " names))
    [ "cegis.session"; "cegis.iteration"; "cegis.candidate"; "cegis.verify";
      "ctx.check"; "sat.solve"; "card.encode" ];
  (* span begin/end pairing over the whole trace *)
  let depth = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Sink.Span_begin _ -> incr depth
      | Sink.Span_end _ ->
          decr depth;
          if !depth < 0 then Alcotest.fail "span_end without begin"
      | _ -> ())
    (events ());
  Alcotest.(check int) "all spans closed" 0 !depth

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "telemetry"
    [
      ( "core",
        [
          Alcotest.test_case "enabled toggle" `Quick test_enabled_toggle;
          Alcotest.test_case "with_sink restores on exn" `Quick
            test_with_sink_restores_on_exn;
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and parents" `Quick test_span_nesting;
          Alcotest.test_case "ids unique" `Quick test_span_ids_unique;
          Alcotest.test_case "exception still ends span" `Quick
            test_span_exception_still_ends;
        ] );
      ( "summary",
        [ Alcotest.test_case "counter/gauge/point merging" `Quick
            test_summary_merging ] );
      ( "ndjson",
        [
          Alcotest.test_case "every line parses" `Quick
            test_ndjson_every_line_parses;
          Alcotest.test_case "fields roundtrip" `Quick
            test_ndjson_roundtrips_fields;
        ] );
      ( "context",
        [
          Alcotest.test_case "stamps events" `Quick test_context_stamps_events;
          Alcotest.test_case "explicit fields win" `Quick
            test_context_explicit_wins;
          Alcotest.test_case "restored on exception" `Quick
            test_context_restored_on_exn;
          Alcotest.test_case "crosses spawn when reinstalled" `Quick
            test_context_crosses_spawn_when_reinstalled;
        ] );
      ( "flight",
        [
          Alcotest.test_case "record/snapshot/dump roundtrip" `Quick
            test_flight_roundtrip;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_flight_disabled_noop;
          Alcotest.test_case "disabled allocates nothing" `Quick
            test_flight_disabled_allocates_nothing;
          Alcotest.test_case "concurrent dumps get distinct files" `Quick
            test_flight_concurrent_dumps;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "disabled allocates nothing" `Quick
            test_runtime_disabled_allocates_nothing;
          Alcotest.test_case "live lens smoke" `Quick test_runtime_lens_smoke;
        ] );
      ( "stats",
        [ qt test_stats_add_assoc; qt test_stats_zero_identity;
          qt test_stats_sum_matches_fold ] );
      ( "cegis",
        [ Alcotest.test_case "event kinds present" `Quick
            test_cegis_event_kinds ] );
    ]
