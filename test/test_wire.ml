(* Wire-protocol torture tests for the serve daemon: an in-process
   server on a temp socket is fed garbage bytes, oversized frames and
   torn half-frames and must answer each with one typed error, close
   the offending connection, and keep serving everyone else.  Also
   covers the deadline path (a fault-injected stalled worker must turn
   into a [timeout] reply, not a hang) and the retrying client (rides
   out a daemon that binds its socket late). *)

module Srv = Fec_session.Server
module Client = Fec_session.Client
module J = Telemetry.Json

let tmpdir () =
  let path = Filename.temp_file "fecwire" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let config ?(grace = 0.5) ?(max_frame = 1 lsl 20) ~dir () =
  {
    (Srv.default_config ~socket:(Filename.concat dir "s.sock")) with
    Srv.workers = 1;
    max_queue = 4;
    grace;
    max_frame;
    idle_timeout = 0.0;
    cache = false;
    no_ledger = true;
  }

let start cfg = Domain.spawn (fun () -> try Srv.run cfg with _ -> ())

let wait_socket path =
  let rec go n =
    if n = 0 then Alcotest.fail "server did not come up"
    else if Sys.file_exists path then ()
    else begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go 200

let shutdown socket =
  let t = Client.connect socket in
  ignore (Client.rpc ~timeout:5.0 t (J.Obj [ ("op", J.Str "shutdown") ]));
  Client.close t

let with_server ?grace ?max_frame f =
  let dir = tmpdir () in
  let cfg = config ?grace ?max_frame ~dir () in
  let d = start cfg in
  wait_socket cfg.Srv.socket;
  Fun.protect
    ~finally:(fun () ->
      (try shutdown cfg.Srv.socket with _ -> ());
      Domain.join d)
    (fun () -> f cfg.Srv.socket)

(* ---------- raw-socket helpers ---------- *)

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_raw fd s = ignore (Unix.write_substring fd s 0 (String.length s))

(* one newline-terminated reply, bounded by a 5 s deadline *)
let recv_line fd =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 256 in
  let rec go () =
    match String.index_opt (Buffer.contents acc) '\n' with
    | Some i -> String.sub (Buffer.contents acc) 0 i
    | None ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0.0 then Alcotest.fail "no reply within 5s"
        else begin
          (match Unix.select [ fd ] [] [] left with
          | [], _, _ -> Alcotest.fail "no reply within 5s"
          | _ -> (
              match Unix.read fd buf 0 4096 with
              | 0 -> Alcotest.fail "connection closed before any reply"
              | n -> Buffer.add_subbytes acc buf 0 n));
          go ()
        end
  in
  go ()

(* the server must close after a typed error: read eventually hits EOF *)
let expect_eof fd =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let buf = Bytes.create 4096 in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0.0 then Alcotest.fail "connection not closed within 5s"
    else
      match Unix.select [ fd ] [] [] left with
      | [], _, _ -> Alcotest.fail "connection not closed within 5s"
      | _ -> ( match Unix.read fd buf 0 4096 with 0 -> () | _ -> go ())
  in
  go ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: expected %S in %S" what needle hay

let ping_ok socket =
  let t = Client.connect socket in
  let reply =
    Fun.protect
      ~finally:(fun () -> Client.close t)
      (fun () -> Client.rpc ~timeout:5.0 t (J.Obj [ ("op", J.Str "ping") ]))
  in
  match J.member "pong" reply with
  | Some (J.Bool true) -> ()
  | _ -> Alcotest.failf "ping: bad reply %s" (J.to_string reply)

(* ---------- torture ---------- *)

let test_bad_frame () =
  with_server (fun socket ->
      let fd = raw_connect socket in
      send_raw fd "this is not json\n";
      let reply = recv_line fd in
      check_contains "bad frame" reply "\"ok\":false";
      check_contains "bad frame" reply "\"kind\":\"bad_frame\"";
      expect_eof fd;
      Unix.close fd;
      (* the daemon survived the hostile peer *)
      ping_ok socket)

let test_oversized_frame () =
  with_server ~max_frame:128 (fun socket ->
      let fd = raw_connect socket in
      send_raw fd (String.make 256 'a');
      let reply = recv_line fd in
      check_contains "oversized" reply "\"kind\":\"oversized\"";
      expect_eof fd;
      Unix.close fd;
      ping_ok socket)

let test_torn_frame () =
  with_server (fun socket ->
      let fd = raw_connect socket in
      send_raw fd "{\"op\":\"pi";
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let reply = recv_line fd in
      check_contains "torn" reply "\"kind\":\"torn_frame\"";
      expect_eof fd;
      Unix.close fd;
      ping_ok socket)

let test_bad_request_keeps_connection () =
  (* a well-formed frame carrying a bad request is an application error:
     the reply has no kind and the connection stays usable *)
  with_server (fun socket ->
      let fd = raw_connect socket in
      send_raw fd "{\"op\":\"submit\"}\n";
      let reply = recv_line fd in
      check_contains "bad request" reply "submit needs spec or optimize";
      if contains reply "\"kind\"" then
        Alcotest.failf "bad request should not carry a kind: %s" reply;
      send_raw fd "{\"op\":\"ping\"}\n";
      let reply = recv_line fd in
      check_contains "ping after error" reply "\"pong\":true";
      Unix.close fd)

(* ---------- deadlines ---------- *)

let test_deadline_timeout () =
  (* a worker stalled by fault injection must not hang an awaited
     submit: the deadline fires, the worker is reaped past grace, and
     the wire answers state=timeout long before the stall ends *)
  with_server ~grace:0.3 (fun socket ->
      let spec =
        match Synth.Fault.parse "seed=7,stall_ms=4000,sat.solve.stall=1.0:max=3"
        with
        | Ok s -> s
        | Error m -> Alcotest.failf "fault spec: %s" m
      in
      Synth.Fault.set_spec (Some spec);
      Fun.protect
        ~finally:(fun () -> Synth.Fault.set_spec None)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let fd = raw_connect socket in
          send_raw fd
            "{\"op\":\"submit\",\"await\":true,\"deadline_ms\":300,\"jobs\":1,\"spec\":\"len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && md(G[0]) = 3\"}\n";
          let reply = recv_line fd in
          let wall = Unix.gettimeofday () -. t0 in
          Unix.close fd;
          check_contains "deadline" reply "\"state\":\"timeout\"";
          if wall >= 3.0 then
            Alcotest.failf
              "timeout reply took %.2fs — waited out the stall instead of \
               reaping"
              wall))

(* ---------- observability ops ---------- *)

let test_stats_worker_detail () =
  (* the stats op must expose per-worker state detail, and submit must
     mint a request id returned on the wire *)
  with_server (fun socket ->
      let t = Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close t)
        (fun () ->
          let reply =
            Client.rpc ~timeout:60.0 t
              (J.Obj
                 [
                   ("op", J.Str "submit"); ("await", J.Bool true);
                   ("jobs", J.Int 1);
                   ( "spec",
                     J.Str
                       "len_G = 1 && len_d(G[0]) = 4 && len_c(G[0]) = 3 && \
                        md(G[0]) = 3" );
                 ])
          in
          (match Option.bind (J.member "request" reply) J.to_string_opt with
          | Some rid when String.length rid > 1 && rid.[0] = 'r' -> ()
          | _ ->
              Alcotest.failf "awaited submit carries no request id: %s"
                (J.to_string reply));
          let stats =
            Client.rpc ~timeout:5.0 t (J.Obj [ ("op", J.Str "stats") ])
          in
          (match J.member "queue_depth" stats with
          | Some (J.Int _) -> ()
          | _ -> Alcotest.fail "stats: missing queue_depth");
          match J.member "workers" stats with
          | Some (J.List (w :: _)) ->
              (match Option.bind (J.member "worker" w) J.to_int with
              | Some _ -> ()
              | None -> Alcotest.fail "worker row: missing index");
              (match Option.bind (J.member "state" w) J.to_string_opt with
              | Some ("idle" | "running" | "condemned") -> ()
              | s ->
                  Alcotest.failf "worker row: bad state %s"
                    (Option.value s ~default:"<none>"));
              (match Option.bind (J.member "since_s" w) J.to_float with
              | Some a when a >= 0.0 -> ()
              | _ -> Alcotest.fail "worker row: missing since_s")
          | _ -> Alcotest.failf "stats: no workers: %s" (J.to_string stats)))

let test_metrics_op_exposition () =
  (* the metrics op returns a Prometheus exposition that parses back and
     carries the per-worker labeled series *)
  with_server (fun socket ->
      let t = Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close t)
        (fun () ->
          let m =
            Client.rpc ~timeout:5.0 t (J.Obj [ ("op", J.Str "metrics") ])
          in
          let expo =
            match Option.bind (J.member "exposition" m) J.to_string_opt with
            | Some e -> e
            | None -> Alcotest.fail "metrics: no exposition"
          in
          let kvs =
            match Telemetry.Metrics.parse_exposition expo with
            | Ok kvs -> kvs
            | Error e -> Alcotest.failf "exposition does not parse: %s" e
          in
          (match List.assoc_opt "serve_metrics_scrapes" kvs with
          | Some (Telemetry.Metrics.Counter n) when n >= 1 -> ()
          | _ -> Alcotest.fail "serve_metrics_scrapes counter missing");
          let has_worker_series =
            List.exists
              (fun (k, _) ->
                contains k "serve_worker_busy{" && contains k "worker=")
              kvs
          in
          if not has_worker_series then
            Alcotest.fail "no serve_worker_busy{worker=...} series";
          (* a second scrape must be monotone on the scrape counter *)
          let m2 =
            Client.rpc ~timeout:5.0 t (J.Obj [ ("op", J.Str "metrics") ])
          in
          let expo2 =
            Option.get
              (Option.bind (J.member "exposition" m2) J.to_string_opt)
          in
          match
            ( List.assoc_opt "serve_metrics_scrapes" kvs,
              Result.to_option (Telemetry.Metrics.parse_exposition expo2)
              |> Option.map (List.assoc_opt "serve_metrics_scrapes")
              |> Option.join )
          with
          | ( Some (Telemetry.Metrics.Counter a),
              Some (Telemetry.Metrics.Counter b) ) ->
              if b <= a then
                Alcotest.failf "scrape counter not monotone: %d then %d" a b
          | _ -> Alcotest.fail "scrape counter missing on second scrape"))

(* ---------- retrying client ---------- *)

let test_client_retry () =
  let dir = tmpdir () in
  let cfg = config ~dir () in
  (* bind the socket only after a delay: the first connects must fail *)
  let d =
    Domain.spawn (fun () ->
        Unix.sleepf 0.5;
        try Srv.run cfg with _ -> ())
  in
  let reply =
    Client.with_retries ~retries:10 ~connect_timeout:1.0
      ~socket:cfg.Srv.socket (fun t ->
        Client.rpc ~timeout:5.0 t (J.Obj [ ("op", J.Str "ping") ]))
  in
  (match J.member "pong" reply with
  | Some (J.Bool true) -> ()
  | _ -> Alcotest.failf "retry ping: bad reply %s" (J.to_string reply));
  shutdown cfg.Srv.socket;
  Domain.join d

let () =
  Alcotest.run "wire"
    [
      ( "torture",
        [
          Alcotest.test_case "garbage frame" `Quick test_bad_frame;
          Alcotest.test_case "oversized frame" `Quick test_oversized_frame;
          Alcotest.test_case "torn frame" `Quick test_torn_frame;
          Alcotest.test_case "bad request keeps connection" `Quick
            test_bad_request_keeps_connection;
        ] );
      ( "deadlines",
        [ Alcotest.test_case "stalled worker times out" `Quick
            test_deadline_timeout ] );
      ( "observability",
        [
          Alcotest.test_case "stats carries per-worker detail" `Quick
            test_stats_worker_detail;
          Alcotest.test_case "metrics op exposition roundtrips" `Quick
            test_metrics_op_exposition;
        ] );
      ( "client",
        [ Alcotest.test_case "retries ride out late bind" `Quick
            test_client_retry ] );
    ]
