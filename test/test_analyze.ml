(* Tests for Telemetry.Analyze: NDJSON parsing (including the tolerated
   truncated tail), trace validation (unbalanced spans, out-of-order
   timestamps), span self-times, the folded-stack golden output, phase
   attribution on a real synthesized trace, and metric diffing with the
   regression-threshold semantics the bench gate relies on. *)

module T = Telemetry
module An = Telemetry.Analyze
module Sink = Telemetry.Sink

let parse_exn content =
  match An.of_string content with
  | Ok p -> p
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

(* ---------------------------------------------------------------- *)
(* parsing                                                           *)
(* ---------------------------------------------------------------- *)

let test_parse_basic () =
  let p =
    parse_exn
      "{\"ts\":0.5,\"kind\":\"event\",\"name\":\"x\",\"extra\":3}\n\
       {\"ts\":0.6,\"kind\":\"counter\",\"name\":\"c\",\"value\":2}\n"
  in
  Alcotest.(check int) "two events" 2 (List.length p.An.events);
  Alcotest.(check bool) "not truncated" false p.An.truncated;
  match p.An.events with
  | [ Sink.Point { fields; _ }; Sink.Counter { value; _ } ] ->
      Alcotest.(check bool) "custom field kept" true
        (List.mem_assoc "extra" fields);
      Alcotest.(check int) "counter value" 2 value
  | _ -> Alcotest.fail "unexpected event shapes"

let test_parse_truncated_tail () =
  let p =
    parse_exn
      "{\"ts\":0.5,\"kind\":\"event\",\"name\":\"x\"}\n{\"ts\":0.6,\"ki"
  in
  Alcotest.(check int) "one surviving event" 1 (List.length p.An.events);
  Alcotest.(check bool) "flagged truncated" true p.An.truncated

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_parse_rejects_midfile_garbage () =
  match An.of_string "{\"ts\":0.5,\"kind\":\"event\",\"name\":\"x\"}\nnope\n" with
  | Ok _ -> Alcotest.fail "midfile garbage accepted"
  | Error msg ->
      Alcotest.(check bool) "names line 2" true (contains ~sub:"line 2" msg)

(* ---------------------------------------------------------------- *)
(* validation                                                        *)
(* ---------------------------------------------------------------- *)

let test_check_unbalanced () =
  let p =
    parse_exn
      "{\"ts\":0.1,\"kind\":\"span_begin\",\"id\":1,\"name\":\"a\"}\n\
       {\"ts\":0.2,\"kind\":\"span_end\",\"id\":7,\"name\":\"ghost\",\"dur\":0.1}\n"
  in
  let c = An.check p in
  (* id 1 never closes, id 7 never opened *)
  Alcotest.(check int) "unbalanced" 2 c.An.unbalanced_spans

let test_check_out_of_order () =
  let p =
    parse_exn
      "{\"ts\":1.0,\"kind\":\"event\",\"name\":\"a\"}\n\
       {\"ts\":0.2,\"kind\":\"event\",\"name\":\"b\"}\n\
       {\"ts\":0.99,\"kind\":\"event\",\"name\":\"c\"}\n"
  in
  let c = An.check p in
  (* 1.0 -> 0.2 regresses beyond the slack; 0.2 -> 0.99 does not, but the
     high-water mark stays 1.0 and 0.99 is within slack of it *)
  Alcotest.(check int) "one regression" 1 c.An.out_of_order

let test_check_workers_are_separate_streams () =
  let p =
    parse_exn
      "{\"ts\":1.0,\"kind\":\"event\",\"name\":\"a\",\"worker\":1}\n\
       {\"ts\":0.2,\"kind\":\"event\",\"name\":\"b\",\"worker\":2}\n"
  in
  Alcotest.(check int) "per-worker streams" 0 (An.check p).An.out_of_order

let test_check_clean () =
  let p =
    parse_exn
      "{\"ts\":0.1,\"kind\":\"span_begin\",\"id\":1,\"name\":\"a\"}\n\
       {\"ts\":0.2,\"kind\":\"span_end\",\"id\":1,\"name\":\"a\",\"dur\":0.1}\n"
  in
  let c = An.check p in
  Alcotest.(check int) "balanced" 0 c.An.unbalanced_spans;
  Alcotest.(check int) "ordered" 0 c.An.out_of_order;
  Alcotest.(check int) "total" 2 c.An.total

let test_check_unknown_fields () =
  let p =
    parse_exn
      "{\"ts\":0.1,\"kind\":\"event\",\"name\":\"x\",\"frobnicate\":1}\n\
       {\"ts\":0.2,\"kind\":\"event\",\"name\":\"y\",\"request\":\"r1-0\",\"worker\":2}\n\
       {\"ts\":0.3,\"kind\":\"event\",\"name\":\"z\",\"frobnicate\":2,\"zorp\":true}\n"
  in
  let c = An.check p in
  Alcotest.(check int) "two events carry unknown fields" 2 c.An.unknown_fields;
  Alcotest.(check (list string))
    "names deduped and sorted" [ "frobnicate"; "zorp" ]
    c.An.unknown_field_names

let test_check_known_fields_silent () =
  (* the fields this build's own emitters stamp must never warn *)
  let p =
    parse_exn
      "{\"ts\":0.1,\"kind\":\"event\",\"name\":\"serve.admit\",\"request\":\"r1-0\",\"session\":3,\"queue_depth\":0}\n\
       {\"ts\":0.2,\"kind\":\"span_begin\",\"id\":1,\"name\":\"serve.request\",\"request\":\"r1-0\",\"worker\":\"0\",\"queue_wait_s\":\"0.010\"}\n\
       {\"ts\":0.4,\"kind\":\"span_end\",\"id\":1,\"name\":\"serve.request\",\"dur\":0.2,\"request\":\"r1-0\"}\n"
  in
  let c = An.check p in
  Alcotest.(check int) "no unknown fields" 0 c.An.unknown_fields

(* ---------------------------------------------------------------- *)
(* request slicing                                                   *)
(* ---------------------------------------------------------------- *)

(* an admission point, then the full request span with a nested solve;
   an unrelated request's event interleaves *)
let request_trace =
  "{\"ts\":0.0,\"kind\":\"event\",\"name\":\"serve.admit\",\"request\":\"r1-0\"}\n\
   {\"ts\":0.5,\"kind\":\"span_begin\",\"id\":1,\"name\":\"serve.request\",\"request\":\"r1-0\"}\n\
   {\"ts\":0.6,\"kind\":\"span_begin\",\"id\":2,\"parent\":1,\"name\":\"sat.solve\",\"request\":\"r1-0\"}\n\
   {\"ts\":1.4,\"kind\":\"span_end\",\"id\":2,\"name\":\"sat.solve\",\"dur\":0.8,\"request\":\"r1-0\"}\n\
   {\"ts\":1.5,\"kind\":\"span_end\",\"id\":1,\"name\":\"serve.request\",\"dur\":1.0,\"request\":\"r1-0\"}\n\
   {\"ts\":2.0,\"kind\":\"event\",\"name\":\"serve.admit\",\"request\":\"r2-0\"}\n"

let test_request_report_slices () =
  let p = parse_exn request_trace in
  (match An.request_ids p with
  | (busiest, n) :: _ ->
      Alcotest.(check string) "busiest request" "r1-0" busiest;
      Alcotest.(check int) "its event count" 5 n
  | [] -> Alcotest.fail "no request ids found");
  match An.request_report ~request:"r1-0" p with
  | None -> Alcotest.fail "slice not found"
  | Some r ->
      Alcotest.(check int) "events in slice" 5 r.An.rq_events;
      Alcotest.(check (float 1e-9)) "wall" 1.5 r.An.rq_wall_s;
      Alcotest.(check (float 1e-9)) "queue wait" 0.5 r.An.rq_queue_wait_s;
      Alcotest.(check int) "no open spans" 0 r.An.rq_open_spans;
      (* queue wait [0, 0.5] plus the root span [0.5, 1.5] tile the wall *)
      Alcotest.(check (float 1e-9)) "fully attributed" 1.5 r.An.rq_attributed_s;
      Alcotest.(check (float 1e-6)) "pct" 100.0 r.An.rq_attributed_pct;
      if r.An.rq_phases = [] then Alcotest.fail "no phases attributed"

let test_request_report_extends_open_spans () =
  (* a reaped request: the solve never ends.  The open span must be
     extended to the slice end so the stall is attributed. *)
  let p =
    parse_exn
      "{\"ts\":0.0,\"kind\":\"event\",\"name\":\"serve.admit\",\"request\":\"r1-1\"}\n\
       {\"ts\":0.2,\"kind\":\"span_begin\",\"id\":5,\"name\":\"serve.request\",\"request\":\"r1-1\"}\n\
       {\"ts\":3.0,\"kind\":\"event\",\"name\":\"manager.reap\",\"request\":\"r1-1\",\"worker\":0}\n"
  in
  match An.request_report ~request:"r1-1" p with
  | None -> Alcotest.fail "slice not found"
  | Some r ->
      Alcotest.(check int) "one open span" 1 r.An.rq_open_spans;
      Alcotest.(check (float 1e-9)) "wall" 3.0 r.An.rq_wall_s;
      if r.An.rq_attributed_pct < 90.0 then
        Alcotest.failf "stalled request underattributed: %.1f%%"
          r.An.rq_attributed_pct

let test_request_report_missing_id () =
  match An.request_report ~request:"nope" (parse_exn request_trace) with
  | None -> ()
  | Some _ -> Alcotest.fail "made up a slice for an absent request"

(* ---------------------------------------------------------------- *)
(* span self-times and the folded-stack golden output                *)
(* ---------------------------------------------------------------- *)

(* a: [0.0, 0.5] with one child b: [0.1, 0.3] — a's self-time is 0.3 s *)
let nested_trace =
  "{\"ts\":0.0,\"kind\":\"span_begin\",\"id\":1,\"name\":\"a\"}\n\
   {\"ts\":0.1,\"kind\":\"span_begin\",\"id\":2,\"parent\":1,\"name\":\"b\"}\n\
   {\"ts\":0.3,\"kind\":\"span_end\",\"id\":2,\"name\":\"b\",\"dur\":0.2}\n\
   {\"ts\":0.5,\"kind\":\"span_end\",\"id\":1,\"name\":\"a\",\"dur\":0.5}\n"

let test_span_self_times () =
  match An.spans (parse_exn nested_trace) with
  | [ b; a ] ->
      Alcotest.(check string) "inner closes first" "b" b.An.name;
      Alcotest.(check (float 1e-9)) "b self = dur" 0.2 b.An.self;
      Alcotest.(check (float 1e-9)) "a self = dur - child" 0.3 a.An.self
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_flame_golden () =
  Alcotest.(check string)
    "folded stacks" "a 300000\na;b 200000\n"
    (An.flame_to_string (parse_exn nested_trace))

(* the nested trace with runtime-lens pauses: one inside b, one outside
   any span — the covered pause folds under a;b as a GC leaf frame and
   its µs leave b's self-time; the uncovered one becomes a root frame *)
let gc_folding_trace =
  "{\"ts\":0.0,\"kind\":\"span_begin\",\"id\":1,\"name\":\"a\"}\n\
   {\"ts\":0.1,\"kind\":\"span_begin\",\"id\":2,\"parent\":1,\"name\":\"b\"}\n\
   {\"ts\":0.2,\"kind\":\"event\",\"name\":\"runtime.gc.minor\",\"domain\":0,\"dur_s\":0.05}\n\
   {\"ts\":0.3,\"kind\":\"span_end\",\"id\":2,\"name\":\"b\",\"dur\":0.2}\n\
   {\"ts\":0.5,\"kind\":\"span_end\",\"id\":1,\"name\":\"a\",\"dur\":0.5}\n\
   {\"ts\":0.9,\"kind\":\"event\",\"name\":\"runtime.gc.major\",\"domain\":0,\"dur_s\":0.01}\n"

let test_flame_gc_folding () =
  Alcotest.(check string)
    "gc pauses fold under the covering span"
    "a 300000\na;b 150000\na;b;runtime.gc.minor 50000\nruntime.gc.major \
     10000\n"
    (An.flame_to_string (parse_exn gc_folding_trace))

(* ---------------------------------------------------------------- *)
(* the runtime section (trace report's GC lens view)                 *)
(* ---------------------------------------------------------------- *)

(* domain 0 tiles [0,2] with two interval points (0.2s minor, 0.1s
   major, 0.1s wait -> 1.6s mutator); domain 1 contributes one
   r1-tagged interval; one over-threshold pause point rides along *)
let runtime_trace =
  "{\"ts\":0.0,\"kind\":\"span_begin\",\"id\":1,\"name\":\"a\"}\n\
   {\"ts\":1.0,\"kind\":\"event\",\"name\":\"runtime.gc\",\"domain\":0,\"interval_s\":1.0,\"minor_s\":0.1,\"major_s\":0.0,\"wait_s\":0.0,\"minor_n\":3,\"major_n\":0,\"alloc_words\":1000}\n\
   {\"ts\":1.2,\"kind\":\"event\",\"name\":\"runtime.gc.minor\",\"domain\":0,\"dur_s\":0.05}\n\
   {\"ts\":1.5,\"kind\":\"event\",\"name\":\"runtime.gc\",\"domain\":1,\"interval_s\":0.5,\"minor_s\":0.05,\"major_s\":0.0,\"wait_s\":0.0,\"minor_n\":1,\"major_n\":0,\"alloc_words\":200,\"request\":\"r1\"}\n\
   {\"ts\":2.0,\"kind\":\"event\",\"name\":\"runtime.gc\",\"domain\":0,\"interval_s\":1.0,\"minor_s\":0.1,\"major_s\":0.1,\"wait_s\":0.1,\"minor_n\":2,\"major_n\":1,\"alloc_words\":500}\n\
   {\"ts\":2.0,\"kind\":\"span_end\",\"id\":1,\"name\":\"a\",\"dur\":2.0}\n"

let test_runtime_section () =
  match An.runtime (parse_exn runtime_trace) with
  | None -> Alcotest.fail "runtime data present but section is None"
  | Some rt ->
      Alcotest.(check int) "two domains" 2 (List.length rt.An.rt_domains);
      let d0 = List.hd rt.An.rt_domains in
      Alcotest.(check int) "domain index" 0 d0.An.rt_domain;
      Alcotest.(check (float 1e-9)) "covered tiles the run" 2.0
        d0.An.rt_covered_s;
      Alcotest.(check (float 1e-9)) "minor summed" 0.2 d0.An.rt_minor_s;
      Alcotest.(check (float 1e-9)) "major summed" 0.1 d0.An.rt_major_s;
      Alcotest.(check (float 1e-9)) "wait summed" 0.1 d0.An.rt_wait_s;
      Alcotest.(check (float 1e-9)) "mutator is the remainder" 1.6
        d0.An.rt_mutator_s;
      Alcotest.(check int) "minor collections" 5 d0.An.rt_minor_n;
      Alcotest.(check int) "major cycles" 1 d0.An.rt_major_n;
      Alcotest.(check int) "alloc words" 1500 d0.An.rt_alloc_words;
      Alcotest.(check int) "pause points counted" 1 rt.An.rt_pauses;
      Alcotest.(check (float 1e-9)) "max pause" 0.05 rt.An.rt_max_pause_s;
      (* domain 0 covers the full 2 s wall: the >=95% attribution gate *)
      Alcotest.(check (float 1e-6)) "coverage" 100.0 rt.An.rt_covered_pct

let test_runtime_section_request_slice () =
  match An.runtime ~request:"r1" (parse_exn runtime_trace) with
  | None -> Alcotest.fail "r1 runtime data present but section is None"
  | Some rt -> (
      Alcotest.(check int) "pauses outside r1 excluded" 0 rt.An.rt_pauses;
      match rt.An.rt_domains with
      | [ d1 ] ->
          Alcotest.(check int) "only domain 1" 1 d1.An.rt_domain;
          Alcotest.(check (float 1e-9)) "r1 interval" 0.5 d1.An.rt_covered_s;
          Alcotest.(check int) "r1 alloc" 200 d1.An.rt_alloc_words
      | ds -> Alcotest.failf "expected 1 domain, got %d" (List.length ds))

let test_runtime_section_absent () =
  Alcotest.(check bool) "lens-off trace has no section" true
    (An.runtime (parse_exn nested_trace) = None)

(* ---------------------------------------------------------------- *)
(* phase attribution on a real in-memory synthesis trace             *)
(* ---------------------------------------------------------------- *)

let test_report_on_real_trace () =
  let sink, events = Sink.memory () in
  let outcome =
    T.with_sink sink (fun () ->
        Synth.Cegis.synthesize ~timeout:60.0
          { Synth.Cegis.data_len = 4; check_len = 5; min_distance = 4;
            extra = [] })
  in
  (match outcome with
  | Synth.Report.Synthesized _ -> ()
  | _ -> Alcotest.fail "instance should synthesize");
  let p = { An.events = events (); truncated = false } in
  let r = An.report p in
  Alcotest.(check bool) "has iterations" true (r.An.iterations > 0);
  Alcotest.(check bool) "wall positive" true (r.An.wall_s > 0.0);
  let phase_names = List.map (fun ph -> ph.An.phase) r.An.phases in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " attributed") true
        (List.mem expected phase_names))
    [ "cegis.loop"; "smtlite.encode"; "cegis.verify"; "sat.propagate";
      "sat.analyze"; "sat.restart"; "sat.other" ];
  (* every named phase is span self-time, so their sum can never exceed
     the busy time, and attribution covers most of the wall *)
  let phase_sum =
    List.fold_left (fun acc ph -> acc +. ph.An.total_s) 0.0 r.An.phases
  in
  Alcotest.(check bool) "phases within busy time" true
    (phase_sum <= r.An.busy_s +. 1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "attribution >= 80%% (got %.1f%%)" r.An.attributed_pct)
    true
    (r.An.attributed_pct >= 80.0);
  (* the solver's inner-loop split must carry real time on this instance *)
  let solver_time =
    List.fold_left
      (fun acc ph ->
        if
          List.mem ph.An.phase
            [ "sat.propagate"; "sat.analyze"; "sat.restart"; "sat.other" ]
        then acc +. ph.An.total_s
        else acc)
      0.0 r.An.phases
  in
  Alcotest.(check bool) "solver time present" true (solver_time > 0.0);
  Alcotest.(check bool) "sat totals counted" true
    (List.assoc "propagations" r.An.sat_totals > 0);
  Alcotest.(check int) "slowest list bounded" 3
    (min 3 (List.length r.An.slowest))

(* ---------------------------------------------------------------- *)
(* metric extraction and diffing                                     *)
(* ---------------------------------------------------------------- *)

let test_metrics_of_trace () =
  let m = An.metrics_of_trace (parse_exn nested_trace) in
  Alcotest.(check (option (float 1e-9))) "span total" (Some 0.5)
    (List.assoc_opt "span.a.total_s" m);
  Alcotest.(check (option (float 1e-9))) "span count" (Some 1.0)
    (List.assoc_opt "span.a.count" m);
  Alcotest.(check (option (float 1e-9))) "wall" (Some 0.5)
    (List.assoc_opt "wall_s" m)

let test_diff_threshold_semantics () =
  let a = [ ("x", 100.0); ("y", 100.0); ("z", 0.0); ("only_a", 1.0) ] in
  let b = [ ("x", 110.0); ("y", 111.0); ("z", 5.0); ("only_b", 1.0) ] in
  let d = An.diff ~threshold:10.0 a b in
  Alcotest.(check int) "shared" 3 d.An.shared;
  Alcotest.(check int) "only_a" 1 d.An.only_a;
  Alcotest.(check int) "only_b" 1 d.An.only_b;
  (* +10.0% is not beyond the threshold; +11% is; 0 -> 5 is infinite *)
  let keys = List.map (fun dl -> dl.An.key) d.An.regressions in
  Alcotest.(check (list string)) "regressions" [ "z"; "y" ]
    (List.sort compare keys |> List.rev);
  Alcotest.(check int) "no improvements" 0 (List.length d.An.improvements)

let test_diff_improvements () =
  let d =
    An.diff ~threshold:10.0 [ ("x", 100.0) ] [ ("x", 50.0) ]
  in
  Alcotest.(check int) "no regressions" 0 (List.length d.An.regressions);
  (match d.An.improvements with
  | [ dl ] -> Alcotest.(check (float 1e-9)) "pct" (-50.0) dl.An.pct
  | _ -> Alcotest.fail "expected one improvement");
  let d_eq = An.diff ~threshold:10.0 [ ("x", 100.0) ] [ ("x", 100.0) ] in
  Alcotest.(check int) "identical clean" 0
    (List.length d_eq.An.regressions + List.length d_eq.An.improvements)

let test_metrics_of_string_detects_bench () =
  let bench =
    "{\"pr\":\"pr4\",\"scale\":100,\"instances\":[{\"experiment\":\"t\",\
     \"instance\":\"i\",\"wall_s\":1.5,\"iterations\":7,\"conflicts\":3}]}\n"
  in
  match An.metrics_of_string bench with
  | Error msg -> Alcotest.failf "bench rejected: %s" msg
  | Ok (m, src) ->
      Alcotest.(check string) "detected" "bench" (An.source_name src);
      Alcotest.(check (option (float 1e-9))) "iterations" (Some 7.0)
        (List.assoc_opt "t/i/iterations" m);
      Alcotest.(check (option (float 1e-9))) "wall" (Some 1.5)
        (List.assoc_opt "t/i/wall_s" m)

let () =
  Alcotest.run "analyze"
    [
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "truncated tail" `Quick test_parse_truncated_tail;
          Alcotest.test_case "midfile garbage" `Quick
            test_parse_rejects_midfile_garbage;
        ] );
      ( "check",
        [
          Alcotest.test_case "unbalanced" `Quick test_check_unbalanced;
          Alcotest.test_case "out of order" `Quick test_check_out_of_order;
          Alcotest.test_case "worker streams" `Quick
            test_check_workers_are_separate_streams;
          Alcotest.test_case "clean" `Quick test_check_clean;
          Alcotest.test_case "unknown fields warn" `Quick
            test_check_unknown_fields;
          Alcotest.test_case "known fields silent" `Quick
            test_check_known_fields_silent;
        ] );
      ( "spans",
        [
          Alcotest.test_case "self times" `Quick test_span_self_times;
          Alcotest.test_case "flame golden" `Quick test_flame_golden;
          Alcotest.test_case "flame folds gc pauses" `Quick
            test_flame_gc_folding;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "aggregates interval points" `Quick
            test_runtime_section;
          Alcotest.test_case "request slice" `Quick
            test_runtime_section_request_slice;
          Alcotest.test_case "absent without lens data" `Quick
            test_runtime_section_absent;
        ] );
      ( "report",
        [ Alcotest.test_case "real trace" `Quick test_report_on_real_trace ] );
      ( "request",
        [
          Alcotest.test_case "slices one request" `Quick
            test_request_report_slices;
          Alcotest.test_case "extends open spans" `Quick
            test_request_report_extends_open_spans;
          Alcotest.test_case "missing id" `Quick test_request_report_missing_id;
        ] );
      ( "diff",
        [
          Alcotest.test_case "trace metrics" `Quick test_metrics_of_trace;
          Alcotest.test_case "threshold semantics" `Quick
            test_diff_threshold_semantics;
          Alcotest.test_case "improvements" `Quick test_diff_improvements;
          Alcotest.test_case "bench detection" `Quick
            test_metrics_of_string_detects_bench;
        ] );
    ]
