#!/bin/sh
# Chaos matrix for `fecsynth serve`: SIGKILL the daemon at a random
# phase while deterministic fault injection (FEC_FAULT_SPEC) is tearing
# at the wire, cache and worker layers, then assert that restart always
# succeeds and recovers every piece of crash state:
#
#   - no stale-socket / pidfile lockout (the new daemon probes the dead
#     socket with a ping and takes it over);
#   - the result cache verifies clean: zero corrupt entries, orphaned
#     *.tmp files from torn writes scavenged at startup;
#   - the run ledger still parses (torn tail repaired);
#   - a run killed in flight is recovered as a first-class "crash"
#     ledger record from the inflight journal;
#   - a deadline-carrying request against a stalled worker is answered
#     "timeout" on the wire within deadline + grace instead of hanging.
#
# Trials are seeded (FEC_FAULT_SPEC seed = trial index, kill phase
# rotates deterministically), so a failing trial replays exactly.
# FEC_CHAOS_ITERS bounds the matrix for CI.

set -u

FECSYNTH=${FECSYNTH:-_build/install/default/bin/fecsynth}
ITERS=${FEC_CHAOS_ITERS:-20}
ROOT=${FEC_CHAOS_DIR:-/tmp/fecsynth-chaos}

SPEC1='len_G = 1 && len_d(G[0]) = 8 && len_c(G[0]) = 4 && md(G[0]) = 3'
SPEC2='len_G = 1 && len_d(G[0]) = 8 && len_c(G[0]) = 5 && md(G[0]) = 4'

trial=setup
dir=$ROOT

fail() {
  echo "chaos: FAIL ($trial): $*" >&2
  for log in "$dir"/serve.log "$dir"/serve2.log; do
    [ -f "$log" ] && sed "s|^|  $log: |" "$log" >&2
  done
  exit 1
}

# Ping until the daemon answers; each try is a fresh connection, so
# injected wire faults costing one connection are ridden out.
wait_ping() {
  n=0
  while [ "$n" -lt 100 ]; do
    "$FECSYNTH" call --socket "$1" '{"op":"ping"}' >/dev/null 2>&1 && return 0
    sleep 0.1
    n=$((n + 1))
  done
  return 1
}

rm -rf "$ROOT"
mkdir -p "$ROOT"

# ---------------------------------------------------------------- trials

i=1
while [ "$i" -le "$ITERS" ]; do
  trial="trial $i"
  dir=$ROOT/trial-$i
  mkdir -p "$dir"
  sock=$dir/serve.sock

  case $((i % 4)) in
    0) faults="seed=$i,stall_ms=40,cache.write.torn_write=0.6,manager.worker.stall=0.3" ;;
    1) faults="seed=$i,stall_ms=30,wire.read.stall=0.3,wire.write.crash=0.1" ;;
    2) faults="seed=$i,stall_ms=60,cache.read.stall=0.5,sat.solve.stall=0.4,cache.write.torn_write=0.3" ;;
    3) faults="seed=$i,manager.worker.crash=0.6:max=2,sat.solve.crash=0.3:max=2,cache.write.torn_write=0.5" ;;
  esac
  case $(((i * 3) % 4)) in
    0) phase=0.05 ;;
    1) phase=0.15 ;;
    2) phase=0.3 ;;
    3) phase=0.5 ;;
  esac

  env FEC_LEDGER_DIR="$dir/ledger" FEC_CACHE_DIR="$dir/cache" \
    FEC_FAULT_SPEC="$faults" \
    "$FECSYNTH" serve --socket "$sock" --workers 2 2> "$dir/serve.log" &
  pid=$!
  wait_ping "$sock" || fail "daemon did not come up under faults ($faults)"

  # Traffic while the faults bite.  Clients may legitimately lose their
  # connection to an injected wire fault; that must never fail the trial.
  "$FECSYNTH" submit --socket "$sock" --no-wait --retries 2 \
    -p "$SPEC1" >/dev/null 2>&1 || true
  "$FECSYNTH" submit --socket "$sock" --no-wait --retries 2 \
    -p "$SPEC2" >/dev/null 2>&1 || true

  sleep "$phase"
  kill -9 "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null

  # Restart (fault-free) on the same state: must take over the stale
  # socket, scavenge the cache and recover the ledger — quickly.
  env FEC_LEDGER_DIR="$dir/ledger" FEC_CACHE_DIR="$dir/cache" \
    "$FECSYNTH" serve --socket "$sock" --workers 2 2> "$dir/serve2.log" &
  pid=$!
  wait_ping "$sock" || fail "restart after SIGKILL did not come up (stale-state lockout?)"

  out=$("$FECSYNTH" cache verify --cache-dir "$dir/cache") \
    || fail "cache corrupt after kill/restart: $out"
  case $out in
    *" 0 corrupt, 0 orphaned tmp"*) ;;
    *) fail "cache not clean after restart scavenge: $out" ;;
  esac

  FEC_LEDGER_DIR=$dir/ledger "$FECSYNTH" runs list >/dev/null 2>&1 \
    || fail "ledger unreadable after kill/restart"

  kill -TERM "$pid"
  wait "$pid" || fail "restarted daemon did not drain to exit 0"
  grep -q drained "$dir/serve2.log" || fail "no drain log line on SIGTERM"
  [ -e "$sock" ] && fail "socket left behind after drain"
  [ -e "$sock.pid" ] && fail "pidfile left behind after drain"

  echo "chaos: trial $i ok (phase ${phase}s, $faults)"
  i=$((i + 1))
done

# ------------------------------------- in-flight run -> crash record

# A worker stalled inside sat.solve is guaranteed to be mid-run when the
# SIGKILL lands; its inflight journal entry must surface as a
# first-class "crash" ledger record on the next start.
trial="inflight crash recovery"
dir=$ROOT/inflight
mkdir -p "$dir"
sock=$dir/serve.sock

env FEC_LEDGER_DIR="$dir/ledger" FEC_CACHE_DIR="$dir/cache" \
  FEC_FAULT_SPEC="seed=1,stall_ms=30000,sat.solve.stall=1.0" \
  "$FECSYNTH" serve --socket "$sock" --workers 1 2> "$dir/serve.log" &
pid=$!
wait_ping "$sock" || fail "daemon did not come up"
"$FECSYNTH" submit --socket "$sock" --no-wait -p "$SPEC1" >/dev/null \
  || fail "submit refused"
sleep 0.6
kill -9 "$pid" 2>/dev/null
wait "$pid" 2>/dev/null

env FEC_LEDGER_DIR="$dir/ledger" FEC_CACHE_DIR="$dir/cache" \
  "$FECSYNTH" serve --socket "$sock" --workers 1 2> "$dir/serve2.log" &
pid=$!
wait_ping "$sock" || fail "restart did not come up"
grep -q "in-flight run" "$dir/serve2.log" \
  || fail "restart did not report recovering the in-flight run"
FEC_LEDGER_DIR=$dir/ledger "$FECSYNTH" runs list --outcome crash \
  | grep -q ' crash ' \
  || fail "killed in-flight run not recorded as a crash outcome"
kill -TERM "$pid"
wait "$pid" || fail "daemon did not drain"

# ------------------------------------------- deadline vs stalled worker

# Every sat.solve stalls for 30 s; a 400 ms deadline with 0.5 s grace
# must still answer state=timeout on the wire in seconds, not minutes.
trial="deadline under stall"
dir=$ROOT/deadline
mkdir -p "$dir"
sock=$dir/serve.sock

env FEC_LEDGER_DIR="$dir/ledger" FEC_CACHE_DIR="$dir/cache" \
  FEC_FAULT_SPEC="seed=2,stall_ms=30000,sat.solve.stall=1.0" \
  "$FECSYNTH" serve --socket "$sock" --workers 1 --grace 0.5 \
  2> "$dir/serve.log" &
pid=$!
wait_ping "$sock" || fail "daemon did not come up"
t0=$(date +%s)
out=$(timeout 20 "$FECSYNTH" submit --socket "$sock" --deadline 400 \
  -p "$SPEC1") || fail "deadline submit failed or hung: $out"
t1=$(date +%s)
case $out in
  *'"state":"timeout"'*) ;;
  *) fail "expected state=timeout, got: $out" ;;
esac
[ $((t1 - t0)) -le 6 ] \
  || fail "timeout reply took $((t1 - t0))s — deadline + grace not enforced"
kill -TERM "$pid"
wait "$pid" || fail "daemon with a condemned worker did not drain cleanly"

echo "chaos: OK ($ITERS kill/restart trials + crash recovery + deadline)"
