(* Seeded randomized cross-check harness.

   Three oracles are compared on randomly generated inputs:
   - the CDCL solver against the exhaustive reference procedure (SAT/UNSAT
     answers must agree; models must satisfy every clause; UNSAT answers
     must come with a DRAT proof the independent checker accepts);
   - the seeded (diversified) solver against the unseeded one — seeds may
     change the search, never the answer;
   - every cardinality encoding against the popcount semantics, by
     exhaustive circuit evaluation.

   The iteration budget is small by default so [dune runtest] stays quick;
   set FEC_FUZZ_ITERS to fuzz harder. *)

open Sat

(* honour FEC_FAULT_SPEC so `make stress` can fuzz under (stall-only)
   fault injection; crash/interrupt faults would break the oracles'
   exception contract, stalls must not change any answer *)
let () = Synth.Fault.init_from_env ()

let default_iters = 2000

let iters =
  match Sys.getenv_opt "FEC_FUZZ_ITERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> default_iters)
  | None -> default_iters

let lit rng n =
  let l = Lit.make (Channel.Prng.int_below rng n) in
  if Channel.Prng.bits rng ~n:1 = 1 then Lit.neg l else l

(* Random CNF near the 3-SAT phase transition so both answers are common. *)
let gen_cnf rng =
  let n = 3 + Channel.Prng.int_below rng 10 in
  let m = 1 + Channel.Prng.int_below rng (9 * n / 2) in
  let clauses =
    List.init m (fun _ ->
        let len = 1 + Channel.Prng.int_below rng 3 in
        List.init len (fun _ -> lit rng n))
  in
  (n, clauses)

let solve_with ?seed ?configure ~proof n clauses =
  let s = Solver.create () in
  if proof then Solver.enable_proof s;
  (match seed with Some x -> Solver.set_seed s x | None -> ());
  (match configure with Some f -> f s | None -> ());
  ignore (Solver.new_vars s n);
  List.iter (Solver.add_clause s) clauses;
  (s, Solver.solve s)

(* Forces the hostile regime: the learnt database is capped at two
   clauses (so reduction and arena churn run constantly) and the
   subsumption/strengthening pass fires at every restart. *)
let aggressive s =
  Solver.set_reduce_limit s (Some 2);
  Solver.set_inprocess_interval s (Some 1)

let check_drat ~iteration s =
  match Solver.proof s with
  | None -> Alcotest.fail "proof recording was enabled but no proof"
  | Some proof -> (
      match Drat.check ~formula:(Solver.original_clauses s) proof with
      | Drat.Valid -> ()
      | Drat.Invalid msg ->
          Alcotest.failf "iteration %d: DRAT proof rejected: %s" iteration msg)

let check_invariants ~iteration s =
  match Solver.self_check s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "iteration %d: self_check: %s" iteration msg

let test_cnf_cross_check () =
  let rng = Channel.Prng.create 0xF00D in
  let sat = ref 0 and unsat = ref 0 in
  for i = 1 to iters do
    let n, clauses = gen_cnf rng in
    let reference = Reference.solve ~num_vars:n clauses in
    let s, answer = solve_with ~proof:true n clauses in
    (match (answer, reference) with
    | Solver.Sat, None | Solver.Unsat, Some _ ->
        Alcotest.failf "iteration %d: solver and reference disagree (%d vars, %d clauses)"
          i n (List.length clauses)
    | Solver.Sat, Some _ ->
        incr sat;
        let model = Solver.model s in
        List.iteri
          (fun j c ->
            if not (Reference.eval model c) then
              Alcotest.failf "iteration %d: model falsifies clause %d" i j)
          clauses
    | Solver.Unsat, None ->
        incr unsat;
        check_drat ~iteration:i s);
    check_invariants ~iteration:i s;
    (* a diversification seed must never change the answer *)
    let _, seeded_answer =
      solve_with ~seed:(i * 2654435761) ~proof:false n clauses
    in
    if seeded_answer <> answer then
      Alcotest.failf "iteration %d: seeded solver changed the answer" i;
    (* constant clause-DB reduction + per-restart inprocessing must not
       change the answer, and the DRAT proof must stay valid through the
       subsumption/strengthening rewrites *)
    let s2, hostile_answer = solve_with ~configure:aggressive ~proof:true n clauses in
    if hostile_answer <> answer then
      Alcotest.failf
        "iteration %d: aggressive reduction/inprocessing changed the answer" i;
    check_invariants ~iteration:i s2;
    if hostile_answer = Solver.Unsat then check_drat ~iteration:i s2
  done;
  if !sat = 0 || !unsat = 0 then
    Alcotest.failf "degenerate fuzz distribution: %d sat / %d unsat" !sat !unsat

(* Inprocessing on/off differential: disabling the pass entirely and
   firing it at every restart must agree with the default configuration
   and the reference on the same instances, incrementally re-solved so
   subsumed state carries across solve calls. *)
let test_inprocessing_on_off () =
  let rng = Channel.Prng.create 0x1A7E5 in
  let rounds = max 50 (iters / 4) in
  for i = 1 to rounds do
    let n, clauses = gen_cnf rng in
    let configs =
      [
        ("off", fun s -> Solver.set_inprocess_interval s None);
        ("every-restart", fun s -> Solver.set_inprocess_interval s (Some 1));
        ("default", fun (_ : Solver.t) -> ());
      ]
    in
    let expected =
      match Reference.solve ~num_vars:n clauses with
      | Some _ -> Solver.Sat
      | None -> Solver.Unsat
    in
    List.iter
      (fun (name, configure) ->
        let s, answer = solve_with ~configure ~proof:true n clauses in
        if answer <> expected then
          Alcotest.failf "iteration %d: inprocessing=%s disagrees with reference"
            i name;
        check_invariants ~iteration:i s;
        if answer = Solver.Unsat then check_drat ~iteration:i s;
        (* the solver must stay usable after an inprocessing pass:
           re-solve under a random assumption and cross-check *)
        let a = lit rng n in
        let under_assumption = Solver.solve ~assumptions:[ a ] s in
        let expected' =
          match Reference.solve ~num_vars:n ([ a ] :: clauses) with
          | Some _ -> Solver.Sat
          | None -> Solver.Unsat
        in
        if under_assumption <> expected' then
          Alcotest.failf
            "iteration %d: inprocessing=%s wrong under assumption" i name)
      configs
  done

(* ---------- cardinality-encoding agreement ---------- *)

let encodings =
  [
    ("naive", Smtlite.Card.Naive);
    ("pairwise", Smtlite.Card.Pairwise);
    ("sequential", Smtlite.Card.Sequential);
    ("totalizer", Smtlite.Card.Totalizer);
    ("adder", Smtlite.Card.Adder);
  ]

(* Exhaustively evaluate the constraint circuit on every assignment of the
   [n] inputs and compare against popcount semantics. *)
let check_card_semantics ~what ~n ~k build expected =
  let es = List.init n Smtlite.Expr.var in
  List.iter
    (fun (name, enc) ->
      let e = build enc es k in
      for bits = 0 to (1 lsl n) - 1 do
        let assign i = bits land (1 lsl i) <> 0 in
        let pop = ref 0 in
        for i = 0 to n - 1 do
          if assign i then incr pop
        done;
        let got = Smtlite.Expr.eval assign e in
        if got <> expected !pop k then
          Alcotest.failf "%s %s: n=%d k=%d assignment %d: got %b" what name n
            k bits got
      done)
    encodings

let test_card_agreement () =
  let rng = Channel.Prng.create 0xCA4D in
  let rounds = max 20 (iters / 10) in
  for _ = 1 to rounds do
    let n = 1 + Channel.Prng.int_below rng 7 in
    let k = Channel.Prng.int_below rng (n + 3) - 1 in
    check_card_semantics ~what:"at_most" ~n ~k Smtlite.Card.at_most
      (fun pop k -> pop <= k);
    check_card_semantics ~what:"at_least" ~n ~k Smtlite.Card.at_least
      (fun pop k -> pop >= k)
  done

(* The same agreement through the solver: assert the constraint with two
   different encodings in separate contexts under a shared random partial
   assignment; satisfiability must match. *)
let test_card_equisat () =
  let rng = Channel.Prng.create 0x5EED in
  let rounds = max 20 (iters / 10) in
  for round = 1 to rounds do
    let n = 2 + Channel.Prng.int_below rng 8 in
    let k = Channel.Prng.int_below rng (n + 1) in
    let base = 1000 * round in
    let es = List.init n (fun i -> Smtlite.Expr.var (base + i)) in
    (* random forced literals, leaving some variables free *)
    let forced =
      List.filter_map
        (fun e ->
          match Channel.Prng.int_below rng 3 with
          | 0 -> Some e
          | 1 -> Some (Smtlite.Expr.not_ e)
          | _ -> None)
        es
    in
    let result enc constraint_ =
      let ctx = Smtlite.Ctx.create () in
      Smtlite.Ctx.assert_ ctx (constraint_ enc es k);
      List.iter (Smtlite.Ctx.assert_ ctx) forced;
      Smtlite.Ctx.check ctx
    in
    let check what constraint_ =
      let answers =
        List.map (fun (name, enc) -> (name, result enc constraint_)) encodings
      in
      match answers with
      | [] -> ()
      | (ref_name, ref_answer) :: rest ->
          List.iter
            (fun (name, answer) ->
              if answer <> ref_answer then
                Alcotest.failf
                  "round %d: %s disagreement between %s and %s (n=%d k=%d)"
                  round what ref_name name n k)
            rest
    in
    check "at_most" Smtlite.Card.at_most;
    check "at_least" Smtlite.Card.at_least
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "cross-check",
        [
          Alcotest.test_case
            (Printf.sprintf "random CNF x%d: cdcl vs reference vs drat" iters)
            `Slow test_cnf_cross_check;
          Alcotest.test_case "inprocessing on/off agrees with reference" `Slow
            test_inprocessing_on_off;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "encodings match popcount semantics" `Quick
            test_card_agreement;
          Alcotest.test_case "encodings equisatisfiable under the solver"
            `Quick test_card_equisat;
        ] );
    ]
