(* Tests for the Telemetry.Metrics registry: histogram bucket math and
   quantiles against an exact sorted-array reference, the Hist merge
   monoid, Prometheus exposition roundtripping, the registry's typing
   discipline, and the disabled-path cost contract (no allocation per
   update when no sink is installed). *)

module T = Telemetry
module M = Telemetry.Metrics
module Hist = Telemetry.Metrics.Hist

(* ---------------------------------------------------------------- *)
(* quantiles vs an exact sorted-array reference                      *)
(* ---------------------------------------------------------------- *)

(* nearest-rank: rank ⌈q·N⌉ clamped to [1..N], 1-based into the sorted
   sample — the definition Hist.quantile implements over buckets *)
let reference_quantile samples q =
  match List.sort compare samples with
  | [] -> None
  | sorted ->
      let n = List.length sorted in
      let rank =
        max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n))))
      in
      Some (List.nth sorted (rank - 1))

let quantiles = [ 0.01; 0.25; 0.5; 0.95; 0.99; 1.0 ]

let check_against_reference ~exact samples =
  let h = Hist.of_list samples in
  List.for_all
    (fun q ->
      match (Hist.quantile h q, reference_quantile samples q) with
      | None, None -> true
      | Some got, Some ref_v ->
          if exact then got = ref_v
          else
            (* bucketing returns the lower bound of the reference's
               bucket: never above, within a 1/32 relative error *)
            got <= ref_v
            && float_of_int (ref_v - got) /. float_of_int (max 1 ref_v)
               <= (1.0 /. 32.0) +. 1e-9
      | _ -> false)
    quantiles

let test_quantile_small_exact =
  QCheck.Test.make ~name:"quantile exact below 64" ~count:500
    QCheck.(list_of_size Gen.(int_range 1 40) (int_bound 63))
    (fun samples -> check_against_reference ~exact:true samples)

let test_quantile_heavy_tail =
  QCheck.Test.make ~name:"quantile within 1/32 on heavy tails" ~count:500
    QCheck.(
      list_of_size
        Gen.(int_range 1 40)
        (* skewed: mostly small, occasionally huge *)
        (QCheck.make
           Gen.(
             int_bound 9 >>= fun roll ->
             if roll < 7 then int_bound 100 else int_bound 10_000_000)))
    (fun samples -> check_against_reference ~exact:false samples)

let test_quantile_single_sample () =
  List.iter
    (fun v ->
      let h = Hist.of_list [ v ] in
      List.iter
        (fun q ->
          match Hist.quantile h q with
          | None -> Alcotest.failf "empty quantile for singleton %d" v
          | Some got ->
              if v < 64 then
                Alcotest.(check int)
                  (Printf.sprintf "singleton %d q=%g" v q)
                  v got
              else if
                not
                  (got <= v
                  && float_of_int (v - got) /. float_of_int v <= 1.0 /. 32.0)
              then
                Alcotest.failf "singleton %d q=%g: got %d outside 1/32" v q got)
        quantiles)
    [ 0; 1; 63; 64; 65; 1000; 123_456_789 ]

let test_quantile_empty () =
  Alcotest.(check (option int)) "empty" None (Hist.quantile Hist.zero 0.5)

(* ---------------------------------------------------------------- *)
(* Hist merge monoid and snapshot delta                              *)
(* ---------------------------------------------------------------- *)

let hist_gen =
  QCheck.Gen.(
    map Hist.of_list
      (list_size (int_bound 12)
         (oneof [ int_bound 63; int_bound 100_000 ])))

let hist_arb =
  QCheck.make hist_gen ~print:(fun h -> Format.asprintf "%a" Hist.pp h)

let test_hist_add_assoc =
  QCheck.Test.make ~name:"Hist.add associative" ~count:300
    (QCheck.triple hist_arb hist_arb hist_arb) (fun (a, b, c) ->
      Hist.add (Hist.add a b) c = Hist.add a (Hist.add b c))

let test_hist_add_comm =
  QCheck.Test.make ~name:"Hist.add commutative" ~count:300
    (QCheck.pair hist_arb hist_arb) (fun (a, b) ->
      Hist.add a b = Hist.add b a)

let test_hist_zero_identity =
  QCheck.Test.make ~name:"Hist.zero identity" ~count:300 hist_arb (fun h ->
      Hist.add Hist.zero h = h && Hist.add h Hist.zero = h)

let test_hist_sub_inverts_add =
  (* per-bucket counts (what attribution consumes) are recovered exactly;
     min/max are only approximations, so compare via [buckets] *)
  QCheck.Test.make ~name:"Hist.sub undoes add bucket-wise" ~count:300
    (QCheck.pair hist_arb hist_arb) (fun (a, b) ->
      Hist.buckets (Hist.sub (Hist.add a b) b) = Hist.buckets a)

let test_hist_count_sum () =
  let samples = [ 3; 3; 70; 1000; 0 ] in
  let h = Hist.of_list samples in
  Alcotest.(check int) "count" (List.length samples) (Hist.count h);
  Alcotest.(check int) "sum exact" (List.fold_left ( + ) 0 samples) (Hist.sum h);
  Alcotest.(check (option int)) "min" (Some 0) (Hist.min_value h);
  Alcotest.(check (option int)) "max" (Some 1000) (Hist.max_value h)

(* ---------------------------------------------------------------- *)
(* registry typing and gating                                        *)
(* ---------------------------------------------------------------- *)

let test_registry_type_mismatch () =
  let _ = M.counter "test.registry.c1" in
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument
       "Metrics.gauge: test.registry.c1 registered with another type")
    (fun () -> ignore (M.gauge "test.registry.c1"))

let test_updates_gated_by_enabled () =
  let c = M.counter "test.gating.c" in
  let g = M.gauge "test.gating.g" in
  let h = M.histogram "test.gating.h" in
  let before = M.counter_value c in
  M.incr c 5;
  M.set g 9.5;
  M.observe h 7;
  Alcotest.(check int) "counter unchanged when disabled" before
    (M.counter_value c);
  Alcotest.(check (float 0.0)) "gauge unchanged when disabled" 0.0
    (M.gauge_value g);
  Alcotest.(check int) "histogram unchanged when disabled" 0
    (Hist.count (M.histogram_value h));
  T.with_sink Telemetry.Sink.null (fun () ->
      M.incr c 5;
      M.set g 9.5;
      M.observe h 7);
  Alcotest.(check int) "counter updated when enabled" (before + 5)
    (M.counter_value c);
  Alcotest.(check (float 0.0)) "gauge updated when enabled" 9.5
    (M.gauge_value g);
  Alcotest.(check int) "histogram updated when enabled" 1
    (Hist.count (M.histogram_value h))

(* The acceptance contract of the disabled path: one atomic load, no
   allocation per update.  Run many updates with no sink installed and
   require the minor heap to stay put (a generous fixed budget absorbs
   any incidental boxing by the harness itself). *)
let test_disabled_path_allocates_nothing () =
  let c = M.counter "test.alloc.c" in
  let g = M.gauge "test.alloc.g" in
  let h = M.histogram "test.alloc.h" in
  Alcotest.(check bool) "telemetry disabled" false (T.enabled ());
  let level = 2.5 in
  (* warm up: first calls may allocate closures/installs *)
  M.incr c 1;
  M.set g level;
  M.observe h 1;
  let rounds = 10_000 in
  let before = Gc.minor_words () in
  for i = 1 to rounds do
    M.incr c i;
    M.set g level;
    M.observe h i
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 100.0 then
    Alcotest.failf
      "disabled-path updates allocated %.0f minor words over %d rounds"
      delta rounds

(* ---------------------------------------------------------------- *)
(* Prometheus exposition roundtrip                                   *)
(* ---------------------------------------------------------------- *)

let sanitized_dump () =
  List.sort compare
    (List.map (fun (name, s) -> (M.sanitize_key name, s)) (M.dump ()))

let samples_equal a b =
  match (a, b) with
  | M.Counter x, M.Counter y -> x = y
  | M.Gauge x, M.Gauge y ->
      Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x)
  | M.Histogram x, M.Histogram y -> Hist.equal x y
  | _ -> false

let test_exposition_roundtrip =
  (* random updates into dedicated test metrics, then the global
     exposition must parse back to exactly the registry dump *)
  QCheck.Test.make ~name:"expose |> parse_exposition = dump" ~count:50
    QCheck.(
      triple
        (list_of_size Gen.(int_bound 8) (int_bound 1_000_000))
        (list_of_size Gen.(int_bound 8) (float_bound_exclusive 1000.0))
        (list_of_size Gen.(int_bound 8) (int_bound 1_000_000)))
    (fun (incrs, levels, observations) ->
      let c = M.counter "test.roundtrip.counter" in
      let g = M.gauge "test.roundtrip.gauge" in
      let h = M.histogram "test.roundtrip.hist" in
      T.with_sink Telemetry.Sink.null (fun () ->
          List.iter (M.incr c) incrs;
          List.iter (M.set g) levels;
          List.iter (M.observe h) observations);
      match M.parse_exposition (M.expose ()) with
      | Error msg -> QCheck.Test.fail_reportf "parse failed: %s" msg
      | Ok parsed ->
          let dumped = sanitized_dump () in
          List.length parsed = List.length dumped
          && List.for_all2
               (fun (n1, s1) (n2, s2) -> n1 = n2 && samples_equal s1 s2)
               parsed dumped)

let test_sanitize () =
  Alcotest.(check string) "dots" "sat_learnt_size" (M.sanitize "sat.learnt_size");
  Alcotest.(check string) "leading digit" "_lives" (M.sanitize "9lives");
  Alcotest.(check string) "odd chars" "a_b_c" (M.sanitize "a-b c")

(* ---------------------------------------------------------------- *)
(* labeled series                                                    *)
(* ---------------------------------------------------------------- *)

let test_labels_canonical () =
  Alcotest.(check string)
    "label order canonicalized"
    (M.series_key ~labels:[ ("a", "1"); ("b", "2") ] "m")
    (M.series_key ~labels:[ ("b", "2"); ("a", "1") ] "m");
  Alcotest.(check string)
    "no labels is the bare name" "m" (M.series_key "m");
  (* the same pairs in any order must alias one registry slot *)
  let c1 = M.counter ~labels:[ ("x", "u"); ("y", "v") ] "test.canon.c" in
  let c2 = M.counter ~labels:[ ("y", "v"); ("x", "u") ] "test.canon.c" in
  T.with_sink Telemetry.Sink.null (fun () ->
      M.incr c1 2;
      M.incr c2 3);
  Alcotest.(check int) "aliased series share the value" 5 (M.counter_value c1)

(* Label values exercising every escape in the text format: quotes,
   backslashes, newlines, plus the block-delimiter characters. *)
let gnarly_value =
  QCheck.make
    QCheck.Gen.(
      string_size (int_range 0 10)
        ~gen:
          (oneofl
             [ 'a'; 'z'; '"'; '\\'; '\n'; ' '; '{'; '}'; ','; '='; '0' ]))
    ~print:String.escaped

let test_labeled_roundtrip =
  (* labeled counter/gauge/histogram series — with hostile label values —
     must survive expose |> parse_exposition exactly like bare ones; the
     registry accumulates fresh label sets across iterations, so the
     family grouping is stressed too *)
  QCheck.Test.make ~name:"labeled expose |> parse_exposition = dump"
    ~count:50
    QCheck.(
      triple (int_bound 3) gnarly_value
        (list_of_size Gen.(int_bound 8) (int_bound 1_000_000)))
    (fun (w, v, observations) ->
      let labels = [ ("worker", string_of_int w); ("weird", v) ] in
      let c = M.counter ~labels "test.labeled.counter" in
      let g = M.gauge ~labels "test.labeled.gauge" in
      let h = M.histogram ~labels "test.labeled.hist" in
      T.with_sink Telemetry.Sink.null (fun () ->
          List.iter (M.incr c) observations;
          M.set g (float_of_int w);
          List.iter (M.observe h) observations);
      match M.parse_exposition (M.expose ()) with
      | Error msg -> QCheck.Test.fail_reportf "parse failed: %s" msg
      | Ok parsed ->
          let dumped = sanitized_dump () in
          List.length parsed = List.length dumped
          && List.for_all2
               (fun (n1, s1) (n2, s2) -> n1 = n2 && samples_equal s1 s2)
               parsed dumped)

(* ---------------------------------------------------------------- *)
(* periodic-flush sink                                               *)
(* ---------------------------------------------------------------- *)

let test_flush_sink_writes_parseable () =
  let writes = ref [] in
  let sink =
    M.flush_sink ~min_interval:0.0 (fun s -> writes := s :: !writes)
  in
  T.with_sink sink (fun () ->
      let c = M.counter "test.flushsink.c" in
      M.incr c 3;
      T.point "tick");
  (match !writes with
  | [] -> Alcotest.fail "flush_sink never wrote"
  | last :: _ -> (
      match M.parse_exposition last with
      | Error msg -> Alcotest.failf "final exposition unparseable: %s" msg
      | Ok parsed ->
          let c =
            List.assoc_opt (M.sanitize "test.flushsink.c") parsed
          in
          Alcotest.(check bool) "counter present with value" true
            (match c with Some (M.Counter n) -> n >= 3 | _ -> false)))

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "metrics"
    [
      ( "quantiles",
        [
          Alcotest.test_case "single sample" `Quick test_quantile_single_sample;
          Alcotest.test_case "empty" `Quick test_quantile_empty;
        ]
        @ qsuite [ test_quantile_small_exact; test_quantile_heavy_tail ] );
      ( "hist-monoid",
        [ Alcotest.test_case "count/sum/min/max" `Quick test_hist_count_sum ]
        @ qsuite
            [
              test_hist_add_assoc; test_hist_add_comm; test_hist_zero_identity;
              test_hist_sub_inverts_add;
            ] );
      ( "registry",
        [
          Alcotest.test_case "type mismatch" `Quick test_registry_type_mismatch;
          Alcotest.test_case "updates gated" `Quick test_updates_gated_by_enabled;
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_path_allocates_nothing;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "sanitize" `Quick test_sanitize;
          Alcotest.test_case "labels canonical" `Quick test_labels_canonical;
          Alcotest.test_case "flush sink" `Quick test_flush_sink_writes_parseable;
        ]
        @ qsuite [ test_exposition_roundtrip; test_labeled_roundtrip ] );
    ]
