(* Tests for the CDCL SAT solver, including differential testing against the
   exhaustive reference procedure. *)

open Sat

let qtest = QCheck_alcotest.to_alcotest
let lit v = Lit.make v
let nlit v = Lit.neg (Lit.make v)

let solve_clauses num_vars clauses =
  let s = Solver.create () in
  ignore (Solver.new_vars s num_vars);
  List.iter (Solver.add_clause s) clauses;
  (s, Solver.solve s)

(* ---------- unit tests ---------- *)

let test_trivial_sat () =
  let s, r = solve_clauses 1 [ [ lit 0 ] ] in
  Alcotest.(check bool) "sat" true (r = Solver.Sat);
  Alcotest.(check bool) "value" true (Solver.value s (lit 0))

let test_trivial_unsat () =
  let _, r = solve_clauses 1 [ [ lit 0 ]; [ nlit 0 ] ] in
  Alcotest.(check bool) "unsat" true (r = Solver.Unsat)

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  Alcotest.(check bool) "not ok" false (Solver.ok s);
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_no_clauses () =
  let s = Solver.create () in
  ignore (Solver.new_vars s 5);
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat)

let test_unit_propagation_chain () =
  (* x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2) ∧ ... forces all true *)
  let n = 50 in
  let clauses =
    [ lit 0 ] :: List.init (n - 1) (fun i -> [ nlit i; lit (i + 1) ])
  in
  let s, r = solve_clauses n clauses in
  Alcotest.(check bool) "sat" true (r = Solver.Sat);
  for i = 0 to n - 1 do
    Alcotest.(check bool) (Printf.sprintf "x%d" i) true (Solver.value s (lit i))
  done

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT needing real search *)
  let var p h = (p * 2) + h in
  let clauses =
    (* each pigeon in some hole *)
    List.init 3 (fun p -> [ lit (var p 0); lit (var p 1) ])
    @ (* no two pigeons share a hole *)
    List.concat_map
      (fun h ->
        [ [ nlit (var 0 h); nlit (var 1 h) ];
          [ nlit (var 0 h); nlit (var 2 h) ];
          [ nlit (var 1 h); nlit (var 2 h) ] ])
      [ 0; 1 ]
  in
  let _, r = solve_clauses 6 clauses in
  Alcotest.(check bool) "php(3,2) unsat" true (r = Solver.Unsat)

let test_pigeonhole_5_4 () =
  let pigeons = 5 and holes = 4 in
  let var p h = (p * holes) + h in
  let clauses =
    List.init pigeons (fun p -> List.init holes (fun h -> lit (var p h)))
    @ List.concat_map
        (fun h ->
          List.concat_map
            (fun p1 ->
              List.filter_map
                (fun p2 ->
                  if p1 < p2 then Some [ nlit (var p1 h); nlit (var p2 h) ] else None)
                (List.init pigeons Fun.id))
            (List.init pigeons Fun.id))
        (List.init holes Fun.id)
  in
  let _, r = solve_clauses (pigeons * holes) clauses in
  Alcotest.(check bool) "php(5,4) unsat" true (r = Solver.Unsat)

let test_incremental_solving () =
  let s = Solver.create () in
  ignore (Solver.new_vars s 3);
  Solver.add_clause s [ lit 0; lit 1 ];
  Alcotest.(check bool) "sat 1" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ nlit 0 ];
  Alcotest.(check bool) "sat 2" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x1 forced" true (Solver.value s (lit 1));
  Solver.add_clause s [ nlit 1 ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check bool) "stays unsat" true (Solver.solve s = Solver.Unsat)

let test_assumptions () =
  let s = Solver.create () in
  ignore (Solver.new_vars s 2);
  Solver.add_clause s [ lit 0; lit 1 ];
  Alcotest.(check bool) "sat under ~x0 ~x1?" true
    (Solver.solve ~assumptions:[ nlit 0; nlit 1 ] s = Solver.Unsat);
  Alcotest.(check bool) "sat under ~x0" true
    (Solver.solve ~assumptions:[ nlit 0 ] s = Solver.Sat);
  Alcotest.(check bool) "x1 true under ~x0" true (Solver.value s (lit 1));
  (* assumptions do not persist *)
  Alcotest.(check bool) "still sat with none" true (Solver.solve s = Solver.Sat)

let test_assumption_of_forced_false () =
  let s = Solver.create () in
  ignore (Solver.new_vars s 2);
  Solver.add_clause s [ nlit 0 ];
  Alcotest.(check bool) "assume forced-false var" true
    (Solver.solve ~assumptions:[ lit 0 ] s = Solver.Unsat);
  Alcotest.(check bool) "assume its negation" true
    (Solver.solve ~assumptions:[ nlit 0 ] s = Solver.Sat)

let test_tautology_ignored () =
  let s = Solver.create () in
  ignore (Solver.new_vars s 1);
  Solver.add_clause s [ lit 0; nlit 0 ];
  Alcotest.(check int) "no clause stored" 0 (Solver.nclauses s);
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat)

let test_duplicate_literals () =
  let s, r = solve_clauses 2 [ [ lit 0; lit 0; lit 1 ]; [ nlit 0 ]; [ nlit 1; nlit 1 ] ] in
  ignore s;
  Alcotest.(check bool) "unsat" true (r = Solver.Unsat)

let test_unallocated_variable_rejected () =
  let s = Solver.create () in
  ignore (Solver.new_var s);
  Alcotest.check_raises "unallocated"
    (Invalid_argument "Solver.add_clause: variable 3 not allocated") (fun () ->
      Solver.add_clause s [ lit 3 ])

(* A satisfiable instance that exercises learning: random 3-CNF under the
   phase-transition density. *)
let test_random_3cnf_sat_models_valid () =
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 20 do
    let n = 30 in
    let m = 90 in
    let clauses =
      List.init m (fun _ ->
          List.init 3 (fun _ ->
              let v = Random.State.int st n in
              if Random.State.bool st then lit v else nlit v))
    in
    let s, r = solve_clauses n clauses in
    match r with
    | Solver.Sat ->
        let model = Solver.model s in
        List.iter
          (fun c ->
            Alcotest.(check bool) "clause satisfied" true (Reference.eval model c))
          clauses
    | Solver.Unsat -> ()
  done

(* ---------- DIMACS ---------- *)

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let cnf = Dimacs.parse text in
  Alcotest.(check int) "vars" 3 cnf.Dimacs.num_vars;
  Alcotest.(check int) "clauses" 2 (List.length cnf.Dimacs.clauses);
  let cnf2 = Dimacs.parse (Dimacs.print cnf) in
  Alcotest.(check bool) "round trip" true (cnf = cnf2)

let test_dimacs_multiline_clause () =
  let cnf = Dimacs.parse "p cnf 2 1\n1\n-2 0\n" in
  Alcotest.(check int) "one clause" 1 (List.length cnf.Dimacs.clauses)

let test_dimacs_load () =
  let cnf = Dimacs.parse "p cnf 2 2\n1 2 0\n-1 0\n" in
  let s = Solver.create () in
  Dimacs.load_into s cnf;
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x2" true (Solver.value s (lit 1))

let test_dimacs_rejects_malformed () =
  let rejected name text =
    match Dimacs.parse text with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "%s: malformed input accepted" name
  in
  rejected "missing header" "1 2 0\n";
  rejected "clause before header" "1 0\np cnf 2 1\n";
  rejected "duplicate header" "p cnf 2 1\np cnf 2 1\n1 0\n";
  rejected "bad token" "p cnf 2 1\n1 x 0\n";
  rejected "non-numeric var count" "p cnf two 1\n1 0\n";
  rejected "negative var count" "p cnf -2 1\n1 0\n";
  rejected "truncated header" "p cnf 2\n1 0\n";
  rejected "literal above declared count" "p cnf 2 1\n1 3 0\n";
  rejected "negative literal above count" "p cnf 2 1\n-3 0\n";
  rejected "unterminated clause" "p cnf 2 1\n1 2\n"

let test_dimacs_corpus_roundtrip () =
  (* the generated corpus (committed under bench/dimacs/) must survive
     print-then-parse bit-for-bit *)
  List.iter
    (fun (name, cnf) ->
      let cnf2 = Dimacs.parse (Dimacs.print cnf) in
      Alcotest.(check bool) (name ^ " round trip") true (cnf = cnf2))
    (Gen.default_corpus ())

let test_gen_corpus_pinned () =
  (* bench/dimacs/*.cnf is generated output: pin the generator so the
     committed files cannot silently drift (regenerate with
     `dune exec bench/gen_corpus.exe` if this is changed on purpose) *)
  let buf = Buffer.create (1 lsl 16) in
  List.iter
    (fun (name, cnf) ->
      Buffer.add_string buf name;
      Buffer.add_string buf (Dimacs.print cnf))
    (Gen.default_corpus ());
  Alcotest.(check string)
    "corpus digest" "74a06108614f725a6f935de6ef85e3b6"
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

(* ---------- reference procedure ---------- *)

let test_reference_rejects_out_of_range () =
  Alcotest.check_raises "solve"
    (Invalid_argument "Reference: variable 5 not allocated (num_vars = 2)")
    (fun () -> ignore (Reference.solve ~num_vars:2 [ [ lit 0 ]; [ lit 5 ] ]));
  Alcotest.check_raises "count_models"
    (Invalid_argument "Reference: variable 0 not allocated (num_vars = 0)")
    (fun () -> ignore (Reference.count_models ~num_vars:0 [ [ nlit 0 ] ]))

(* ---------- DRAT proofs ---------- *)

let test_drat_simple_unsat_proof () =
  let s = Solver.create () in
  Solver.enable_proof s;
  ignore (Solver.new_vars s 2);
  let clauses = [ [ lit 0; lit 1 ]; [ nlit 0; lit 1 ]; [ lit 0; nlit 1 ]; [ nlit 0; nlit 1 ] ] in
  List.iter (Solver.add_clause s) clauses;
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  match Solver.proof s with
  | None -> Alcotest.fail "expected a proof"
  | Some text -> (
      match Drat.check ~formula:clauses text with
      | Drat.Valid -> ()
      | Drat.Invalid msg -> Alcotest.fail msg)

let test_drat_pigeonhole_proof () =
  let pigeons = 5 and holes = 4 in
  let var p h = (p * holes) + h in
  let clauses =
    List.init pigeons (fun p -> List.init holes (fun h -> lit (var p h)))
    @ List.concat_map
        (fun h ->
          List.concat_map
            (fun p1 ->
              List.filter_map
                (fun p2 ->
                  if p1 < p2 then Some [ nlit (var p1 h); nlit (var p2 h) ] else None)
                (List.init pigeons Fun.id))
            (List.init pigeons Fun.id))
        (List.init holes Fun.id)
  in
  let s = Solver.create () in
  Solver.enable_proof s;
  ignore (Solver.new_vars s (pigeons * holes));
  List.iter (Solver.add_clause s) clauses;
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  match Solver.proof s with
  | None -> Alcotest.fail "expected a proof"
  | Some text -> (
      match Drat.check ~formula:clauses text with
      | Drat.Valid -> ()
      | Drat.Invalid msg -> Alcotest.fail msg)

let test_drat_rejects_bogus_proof () =
  (* claiming an arbitrary unit out of thin air must fail RUP *)
  let formula = [ [ lit 0; lit 1 ] ] in
  match Drat.check ~formula "-1 0\n1 0\n0\n" with
  | Drat.Invalid _ -> ()
  | Drat.Valid -> Alcotest.fail "bogus proof accepted"

let test_drat_requires_empty_clause () =
  let formula = [ [ lit 0 ]; [ nlit 0; lit 1 ] ] in
  (* "2 0" is RUP here, but no empty clause is ever derived *)
  match Drat.check ~formula "2 0\n" with
  | Drat.Invalid msg ->
      Alcotest.(check bool) "mentions empty clause" true
        (String.length msg > 0)
  | Drat.Valid -> Alcotest.fail "incomplete proof accepted"

let test_drat_parse_roundtrip () =
  let steps = Drat.parse "1 -2 0\nd 3 0\n0\n" in
  Alcotest.(check int) "three steps" 3 (List.length steps);
  match steps with
  | [ (true, [ a; b ]); (false, [ c ]); (true, []) ] ->
      Alcotest.(check int) "lit 1" 1 (Lit.to_dimacs a);
      Alcotest.(check int) "lit -2" (-2) (Lit.to_dimacs b);
      Alcotest.(check int) "lit 3" 3 (Lit.to_dimacs c)
  | _ -> Alcotest.fail "unexpected parse"

(* ---------- differential property tests ---------- *)

let arb_cnf =
  let gen =
    QCheck.Gen.(
      int_range 1 10 >>= fun n ->
      int_range 0 40 >>= fun m ->
      let gen_lit = map2 (fun v s -> if s then lit v else nlit v) (int_range 0 (n - 1)) bool in
      let gen_clause = int_range 1 4 >>= fun k -> list_repeat k gen_lit in
      map (fun cls -> (n, cls)) (list_repeat m gen_clause))
  in
  let print (n, cls) =
    Printf.sprintf "vars=%d %s" n
      (String.concat " & "
         (List.map
            (fun c ->
              "(" ^ String.concat "|" (List.map (fun l -> string_of_int (Lit.to_dimacs l)) c) ^ ")")
            cls))
  in
  QCheck.make ~print gen

let prop_drat_proofs_validate =
  QCheck.Test.make ~name:"every UNSAT answer carries a valid DRAT proof" ~count:300
    arb_cnf
    (fun (n, clauses) ->
      let s = Solver.create () in
      Solver.enable_proof s;
      ignore (Solver.new_vars s n);
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve s with
      | Solver.Sat -> true
      | Solver.Unsat -> (
          match Solver.proof s with
          | None -> false
          | Some text -> Drat.check ~formula:clauses text = Drat.Valid))

let prop_agrees_with_reference =
  QCheck.Test.make ~name:"CDCL agrees with exhaustive reference" ~count:500 arb_cnf
    (fun (n, clauses) ->
      let _, r = solve_clauses n clauses in
      let expected = Reference.solve ~num_vars:n clauses in
      match (r, expected) with
      | Solver.Sat, Some _ -> true
      | Solver.Unsat, None -> true
      | _ -> false)

let prop_sat_model_satisfies =
  QCheck.Test.make ~name:"returned model satisfies all clauses" ~count:500 arb_cnf
    (fun (n, clauses) ->
      let s, r = solve_clauses n clauses in
      match r with
      | Solver.Unsat -> true
      | Solver.Sat ->
          let model = Solver.model s in
          List.for_all (Reference.eval model) clauses)

let prop_assumptions_consistent =
  QCheck.Test.make ~name:"solve under assumptions = solve with units" ~count:300
    (QCheck.pair arb_cnf QCheck.small_int)
    (fun ((n, clauses), seed) ->
      let st = Random.State.make [| seed |] in
      let assumptions =
        List.init (1 + Random.State.int st 3) (fun _ ->
            let v = Random.State.int st n in
            if Random.State.bool st then lit v else nlit v)
      in
      let s, _ = solve_clauses n clauses in
      let r1 = Solver.solve ~assumptions s in
      let r2 =
        let _, r = solve_clauses n (clauses @ List.map (fun l -> [ l ]) assumptions) in
        r
      in
      r1 = r2)

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"Dimacs.parse ∘ print is the identity" ~count:300 arb_cnf
    (fun (n, clauses) ->
      let cnf = { Dimacs.num_vars = n; clauses } in
      Dimacs.parse (Dimacs.print cnf) = cnf)

(* Structural invariant of the two-watched-literal scheme, checked by the
   solver's own auditor at the propagation fixpoint [solve] leaves behind:
   every live clause is watched exactly once under each of its first two
   literals, and a falsified watch forces the other watch true. *)
let prop_watcher_invariant =
  QCheck.Test.make ~name:"watcher invariant holds after solve" ~count:300
    arb_cnf
    (fun (n, clauses) ->
      let s, _ = solve_clauses n clauses in
      match Solver.self_check s with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let sorted_clauses s =
  let acc = ref [] in
  Solver.iter_clauses s (fun c ->
      acc := List.sort compare (List.map Lit.code c) :: !acc);
  List.sort compare !acc

(* Arena compaction is semantically a no-op: the stored clauses are
   unchanged (as a multiset), invariants still hold, and subsequent
   solves — including under assumptions, exercising the remapped
   watchers — agree with the exhaustive reference. *)
let prop_compaction_preserves_models =
  QCheck.Test.make ~name:"arena compaction preserves model equivalence"
    ~count:300
    (QCheck.pair arb_cnf QCheck.small_int)
    (fun ((n, clauses), seed) ->
      let s, r1 = solve_clauses n clauses in
      let before = sorted_clauses s in
      Solver.compact s;
      let after = sorted_clauses s in
      if before <> after then QCheck.Test.fail_report "clause store changed";
      (match Solver.self_check s with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_report msg);
      let r2 = Solver.solve s in
      if r1 <> r2 then QCheck.Test.fail_report "answer changed after compaction";
      let st = Random.State.make [| seed |] in
      let a =
        let v = Random.State.int st n in
        if Random.State.bool st then lit v else nlit v
      in
      let got = Solver.solve ~assumptions:[ a ] s in
      let expected =
        match Reference.solve ~num_vars:n ([ a ] :: clauses) with
        | Some _ -> Solver.Sat
        | None -> Solver.Unsat
      in
      got = expected)

(* The tuning knobs must not change answers: pinning the learnt limit to
   almost nothing (constant reduction + arena churn) and running
   inprocessing at every restart still agrees with the reference, and
   stats record the work. *)
let prop_aggressive_knobs_agree =
  QCheck.Test.make ~name:"aggressive reduction/inprocessing agrees" ~count:200
    arb_cnf
    (fun (n, clauses) ->
      let s = Solver.create () in
      Solver.set_reduce_limit s (Some 2);
      Solver.set_inprocess_interval s (Some 1);
      ignore (Solver.new_vars s n);
      List.iter (Solver.add_clause s) clauses;
      let r = Solver.solve s in
      (match Solver.self_check s with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_report msg);
      let expected =
        match Reference.solve ~num_vars:n clauses with
        | Some _ -> Solver.Sat
        | None -> Solver.Unsat
      in
      r = expected)

let test_reduce_db_runs () =
  (* php(7,6) generates far more than 2 learnt clauses: with the limit
     pinned the database must be reduced (and the answer unaffected) *)
  let cnf = Gen.pigeonhole ~pigeons:7 ~holes:6 in
  let s = Solver.create () in
  Solver.set_reduce_limit s (Some 2);
  Dimacs.load_into s cnf;
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  let st = Solver.stats s in
  Alcotest.(check bool) "reductions happened" true (st.Solver.reduces > 0)

let test_inprocessing_subsumes () =
  (* a strict superset clause must be removed by the subsumption pass *)
  let s = Solver.create () in
  Solver.set_inprocess_interval s (Some 1);
  ignore (Solver.new_vars s 6);
  Solver.add_clause s [ lit 0; lit 1 ];
  Solver.add_clause s [ lit 0; lit 1; lit 2 ];
  Solver.add_clause s [ lit 3; lit 4; lit 5 ];
  Alcotest.(check int) "three clauses stored" 3 (Solver.nclauses s);
  (* force enough conflicts that at least one restart (and hence a pass)
     actually runs — php(7,6) needs several hundred *)
  let cnf = Gen.pigeonhole ~pigeons:7 ~holes:6 in
  let base = Solver.new_vars s cnf.Dimacs.num_vars in
  List.iter
    (fun c ->
      Solver.add_clause s
        (List.map
           (fun l ->
             let l' = Lit.make (base + Lit.var l) in
             if Lit.sign l then l' else Lit.neg l')
           c))
    cnf.Dimacs.clauses;
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  let st = Solver.stats s in
  Alcotest.(check bool) "subsumption happened" true (st.Solver.subsumed > 0)

let test_compaction_under_churn () =
  (* a tiny learnt limit deletes clauses constantly; the arena must be
     garbage-collected rather than grow without bound *)
  let cnf = Gen.random_ksat ~seed:99 ~nvars:120 ~ratio:4.6 () in
  let s = Solver.create () in
  Solver.set_reduce_limit s (Some 8);
  Dimacs.load_into s cnf;
  ignore (Solver.solve s);
  let st = Solver.stats s in
  Alcotest.(check bool) "compactions happened" true (st.Solver.compactions > 0);
  match Solver.self_check s with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let prop_incremental_matches_monolithic =
  QCheck.Test.make ~name:"incremental clause addition matches from-scratch" ~count:200
    arb_cnf
    (fun (n, clauses) ->
      (* add clauses one at a time, re-solving after each addition *)
      let s = Solver.create () in
      ignore (Solver.new_vars s n);
      let ok = ref true in
      List.iteri
        (fun i c ->
          Solver.add_clause s c;
          let r = Solver.solve s in
          let prefix = List.filteri (fun j _ -> j <= i) clauses in
          let expected =
            match Reference.solve ~num_vars:n prefix with
            | Some _ -> Solver.Sat
            | None -> Solver.Unsat
          in
          if r <> expected then ok := false)
        clauses;
      !ok)

let () =
  Alcotest.run "sat"
    [
      ( "solver-unit",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "no clauses" `Quick test_no_clauses;
          Alcotest.test_case "unit propagation chain" `Quick test_unit_propagation_chain;
          Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
          Alcotest.test_case "pigeonhole 5/4" `Quick test_pigeonhole_5_4;
          Alcotest.test_case "incremental solving" `Quick test_incremental_solving;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "assumption of forced var" `Quick test_assumption_of_forced_false;
          Alcotest.test_case "tautology ignored" `Quick test_tautology_ignored;
          Alcotest.test_case "duplicate literals" `Quick test_duplicate_literals;
          Alcotest.test_case "unallocated var rejected" `Quick test_unallocated_variable_rejected;
          Alcotest.test_case "random 3-CNF model validity" `Quick test_random_3cnf_sat_models_valid;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "round trip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "multiline clause" `Quick test_dimacs_multiline_clause;
          Alcotest.test_case "load into solver" `Quick test_dimacs_load;
          Alcotest.test_case "rejects malformed input" `Quick test_dimacs_rejects_malformed;
          Alcotest.test_case "corpus round trip" `Quick test_dimacs_corpus_roundtrip;
          Alcotest.test_case "corpus generator pinned" `Quick test_gen_corpus_pinned;
          qtest prop_dimacs_roundtrip;
        ] );
      ( "reference",
        [
          Alcotest.test_case "rejects out-of-range vars" `Quick
            test_reference_rejects_out_of_range;
        ] );
      ( "solver-internals",
        [
          Alcotest.test_case "reduce_db runs under pinned limit" `Quick test_reduce_db_runs;
          Alcotest.test_case "inprocessing subsumes" `Quick test_inprocessing_subsumes;
          Alcotest.test_case "compaction under churn" `Quick test_compaction_under_churn;
          qtest prop_watcher_invariant;
          qtest prop_compaction_preserves_models;
          qtest prop_aggressive_knobs_agree;
        ] );
      ( "drat",
        [
          Alcotest.test_case "simple unsat proof" `Quick test_drat_simple_unsat_proof;
          Alcotest.test_case "pigeonhole proof" `Quick test_drat_pigeonhole_proof;
          Alcotest.test_case "rejects bogus proof" `Quick test_drat_rejects_bogus_proof;
          Alcotest.test_case "requires empty clause" `Quick test_drat_requires_empty_clause;
          Alcotest.test_case "parse round trip" `Quick test_drat_parse_roundtrip;
          qtest prop_drat_proofs_validate;
        ] );
      ( "solver-props",
        [
          qtest prop_agrees_with_reference;
          qtest prop_sat_model_satisfies;
          qtest prop_assumptions_consistent;
          qtest prop_incremental_matches_monolithic;
        ] );
    ]
