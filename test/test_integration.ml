(* Integration tests: whole-pipeline scenarios crossing library borders.

   - synthesize -> verify -> channel-simulate (the §4.2 loop);
   - design -> composite -> frame -> corrupt -> correct (the deployment
     story);
   - emit C -> compile with gcc -> run against the in-process codec on the
     same sweep (the §4.4 pipeline, when a C compiler is present);
   - concatenated FEC as in 802.3df: inner Hamming (128,120) over the
     bit-stream of an outer KP4 RS(544,514) codeword. *)

let test_synthesize_verify_simulate () =
  match
    Synth.Cegis.synthesize ~timeout:60.0
      { Synth.Cegis.data_len = 8; check_len = 5; min_distance = 3; extra = [] }
  with
  | Synth.Report.Synthesized (code, _) ->
      (* verify on both paths *)
      Alcotest.(check bool) "SAT verify" true
        (Hamming.Distance.sat_has_min_distance_at_least code 3);
      Alcotest.(check bool) "enum verify" true
        (Hamming.Distance.has_min_distance_at_least code 3);
      (* channel simulation must agree with theory within noise *)
      let codec = Channel.Montecarlo.codec_of_code code in
      let r =
        Channel.Montecarlo.run ~codec ~md:3 ~words:100_000 ~p:0.05 ~seed:404
          (Channel.Montecarlo.uniform_data codec)
      in
      let rel =
        Float.abs
          (float_of_int r.Channel.Montecarlo.flips_ge_md
          -. r.Channel.Montecarlo.expected_flips_ge_md)
        /. r.Channel.Montecarlo.expected_flips_ge_md
      in
      Alcotest.(check bool) "within 10% of P_u" true (rel < 0.1);
      Alcotest.(check bool) "undetected below >=md count" true
        (r.Channel.Montecarlo.undetected <= r.Channel.Montecarlo.flips_ge_md)
  | _ -> Alcotest.fail "synthesis failed"

let test_design_frame_correct () =
  (* small weighted design end-to-end, then transport under corruption *)
  let weights = [| 50; 40; 30; 20; 10; 5; 2; 1 |] in
  let g0 = { Synth.Weighted.check_len = 4; min_distance = 3 } in
  let g1 = { Synth.Weighted.check_len = 1; min_distance = 2 } in
  match Synth.Weighted.optimize ~timeout:60.0 ~p:0.1 ~weights g0 g1 with
  | None -> Alcotest.fail "no weighted design"
  | Some r ->
      let codec =
        Fec_core.Composite.of_mapping
          ~codes:[| fst r.Synth.Weighted.codes; snd r.Synth.Weighted.codes |]
          ~mapping:r.Synth.Weighted.mapping
      in
      Alcotest.(check int) "word len" 8 (Fec_core.Composite.word_len codec);
      let words = Array.init 100 (fun i -> (i * 37) land 0xFF) in
      let frame = Fec_core.Framing.encode codec words in
      (* flip one bit inside the strong part of one codeword *)
      let header =
        4 + 2 + String.length (Fec_core.Registry.describe codec) + 3
      in
      let buf = Bytes.of_string frame in
      Bytes.set buf (header + 5) (Char.chr (Char.code (Bytes.get buf (header + 5)) lxor 4));
      let _, out, report = Fec_core.Framing.decode (Bytes.to_string buf) in
      Alcotest.(check int) "words back" 100 (Array.length out);
      Alcotest.(check bool) "repaired or detected" true
        (report.Fec_core.Framing.corrected + report.Fec_core.Framing.uncorrectable >= 1)

let test_emitted_c_matches_fastcodec () =
  if Sys.command "command -v gcc > /dev/null 2>&1" <> 0 then ()
  else begin
    let code = Hamming.Catalog.shortened ~data_len:16 ~check_len:6 in
    let fast = Hamming.Fastcodec.compile code in
    (* reference checksum over a sweep, from the in-process codec *)
    let n = 100_000 in
    let reference = ref 0 in
    let d = ref 0 in
    for _ = 1 to n do
      let w = fast.Hamming.Fastcodec.encode (!d land 0xFFFF) in
      reference := !reference lxor w lxor fast.Hamming.Fastcodec.syndrome w;
      d := !d + 21
    done;
    (* compile the emitted C with a custom driver running the same sweep *)
    let dir = Filename.temp_file "fecitest" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let gen_c = Filename.concat dir "gen.c" in
    let drv_c = Filename.concat dir "drv.c" in
    let exe = Filename.concat dir "t.exe" in
    let oc = open_out gen_c in
    output_string oc (Hamming.Emit.c_source ~name:"fec" code);
    close_out oc;
    let oc = open_out drv_c in
    output_string oc
      (Printf.sprintf
         "#include <stdint.h>\n#include <stdio.h>\n\
          uint64_t fec_encode(uint64_t);\nuint64_t fec_syndrome(uint64_t);\n\
          int main(void){uint64_t acc=0,d=0;for(int i=0;i<%d;i++){uint64_t \
          w=fec_encode(d&0xFFFF);acc^=w^fec_syndrome(w);d+=21;}\
          printf(\"%%llu\\n\",(unsigned long long)acc);return 0;}\n"
         n);
    close_out oc;
    let gen_o = Filename.concat dir "gen.o" in
    let rc =
      Sys.command
        (Printf.sprintf "gcc -O2 -c -Dmain=unused_generated_main %s -o %s 2>/dev/null"
           gen_c gen_o)
    in
    Alcotest.(check int) "gcc compiles generated code" 0 rc;
    let rc = Sys.command (Printf.sprintf "gcc -O2 %s %s -o %s 2>/dev/null" gen_o drv_c exe) in
    Alcotest.(check int) "gcc links driver" 0 rc;
    let ic = Unix.open_process_in exe in
    let line = input_line ic in
    ignore (Unix.close_process_in ic);
    Alcotest.(check string) "C checksum = OCaml checksum" (string_of_int !reference) line
  end

(* 802.3df-style concatenation: outer KP4 RS(544,514) over 10-bit symbols,
   inner Hamming (128,120) over the serialized bit stream. *)
let test_concatenated_kp4_hamming () =
  let rs = Lazy.force Rs.Reed_solomon.kp4 in
  let inner = Lazy.force Hamming.Catalog.ieee_128_120 in
  let st = Random.State.make [| 802 |] in
  let data = Array.init 514 (fun _ -> Random.State.int st 1024) in
  (* outer encode: 544 symbols = 5440 bits *)
  let outer = Rs.Reed_solomon.encode rs data in
  let bits = Gf2.Bitvec.create (544 * 10) in
  Array.iteri
    (fun i sym ->
      for b = 0 to 9 do
        if (sym lsr (9 - b)) land 1 = 1 then Gf2.Bitvec.set bits ((i * 10) + b) true
      done)
    outer;
  (* inner encode: chop into 120-bit blocks (pad the tail), Hamming-encode *)
  let block_count = (5440 + 119) / 120 in
  let padded = Gf2.Bitvec.create (block_count * 120) in
  Gf2.Bitvec.blit ~src:bits ~src_pos:0 ~dst:padded ~dst_pos:0 ~len:5440;
  let codewords =
    Array.init block_count (fun b ->
        Hamming.Code.encode inner (Gf2.Bitvec.sub padded (b * 120) 120))
  in
  (* channel: flip one random bit in every inner codeword (correctable),
     plus a burst of 12 flips in one block (uncorrectable by the inner
     code, to be mopped up by the outer RS) *)
  let corrupted =
    Array.mapi
      (fun b w ->
        let w' = Gf2.Bitvec.copy w in
        Gf2.Bitvec.flip w' (Random.State.int st 128);
        if b = 3 then
          for _ = 1 to 12 do
            Gf2.Bitvec.flip w' (Random.State.int st 128)
          done;
        w')
      codewords
  in
  (* inner decode: correct where possible, pass data through otherwise *)
  let recovered_bits = Gf2.Bitvec.create (block_count * 120) in
  let uncorrectable_blocks = ref 0 in
  Array.iteri
    (fun b w ->
      let data_bits =
        match Hamming.Code.decode inner w with
        | Hamming.Code.Valid d | Hamming.Code.Corrected (d, _) -> d
        | Hamming.Code.Uncorrectable _ ->
            incr uncorrectable_blocks;
            Hamming.Code.data_of inner w
      in
      Gf2.Bitvec.blit ~src:data_bits ~src_pos:0 ~dst:recovered_bits ~dst_pos:(b * 120)
        ~len:120)
    corrupted;
  (* outer decode: repack symbols and let KP4 fix the residue *)
  let received =
    Array.init 544 (fun i ->
        let acc = ref 0 in
        for b = 0 to 9 do
          acc := (!acc lsl 1) lor (if Gf2.Bitvec.get recovered_bits ((i * 10) + b) then 1 else 0)
        done;
        !acc)
  in
  match Rs.Reed_solomon.decode rs received with
  | Rs.Reed_solomon.Valid d | Rs.Reed_solomon.Corrected (d, _) ->
      Alcotest.(check bool) "payload recovered through both layers" true (d = data)
  | Rs.Reed_solomon.Uncorrectable ->
      Alcotest.fail "outer code failed to absorb the inner residue"

let test_property_file_to_codec () =
  (* a property file drives synthesis; the result round-trips through the
     registry and protects data in a composite *)
  let prop =
    Spec.Parse.prop_file
      "# an 8-bit code with distance 3, as few checks as possible\n\
       len_G = 1\n\
       len_d(G[0]) = 8 &&\n\
       len_c(G[0]) <= 6\n\
       md(G[0]) = 3\n\
       minimal(len_c(G[0]))\n"
  in
  match Synth.Driver.run ~timeout:60.0 prop with
  | Synth.Driver.Codes ([ code ], _) ->
      let descriptor = Fec_core.Registry.describe_code code in
      let code' = Fec_core.Registry.code_of_string descriptor in
      Alcotest.(check bool) "registry round trip" true (Hamming.Code.equal code code');
      let composite =
        Fec_core.Composite.create ~word_len:8 [ (code, List.init 8 Fun.id) ]
      in
      let w = Fec_core.Composite.encode composite 0xA7 in
      Alcotest.(check bool) "composite validates" true
        (Fec_core.Composite.is_valid composite w);
      (match Fec_core.Composite.correct composite (w lxor 16) with
      | Some fixed ->
          Alcotest.(check int) "corrected" 0xA7 (Fec_core.Composite.data_of composite fixed)
      | None -> Alcotest.fail "expected correction")
  | _ -> Alcotest.fail "driver failed"

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "synthesize/verify/simulate" `Quick
            test_synthesize_verify_simulate;
          Alcotest.test_case "weighted design to framed transport" `Quick
            test_design_frame_correct;
          Alcotest.test_case "emitted C matches fast codec" `Quick
            test_emitted_c_matches_fastcodec;
          Alcotest.test_case "concatenated KP4 + Hamming (802.3df style)" `Quick
            test_concatenated_kp4_hamming;
          Alcotest.test_case "property file to protected words" `Quick
            test_property_file_to_codec;
        ] );
    ]
