(* The session layer's cache: canonical keys must be injective on
   semantically distinct tasks (and only those), and the on-disk entry
   envelope must serve bit-identical results on a hit while treating any
   corruption, collision or stale certificate as a recoverable miss. *)

module D = Synth.Driver
module Key = Fec_session.Key
module Cache = Fec_session.Cache

let qtest = QCheck_alcotest.to_alcotest

let single ?(fixed_bits = []) ?len1_max ~data_len ~check_lo ~check_hi ~md () =
  { D.data_len; check_lo; check_hi; md; len1_max; fixed_bits }

(* ---------- canonicalization ---------- *)

let test_fixed_bits_order () =
  let fb = [ (0, 4, true); (1, 5, false); (3, 6, true) ] in
  let permuted = [ (3, 6, true); (0, 4, true); (1, 5, false) ] in
  let duplicated = fb @ [ (0, 4, true); (3, 6, true) ] in
  let mk fixed_bits =
    Key.canonical
      (D.Fixed (single ~fixed_bits ~data_len:4 ~check_lo:3 ~check_hi:3 ~md:3 ()))
  in
  Alcotest.(check string) "permuted conjuncts" (mk fb) (mk permuted);
  Alcotest.(check string) "duplicated conjuncts" (mk fb) (mk duplicated)

let test_one_point_walk_is_fixed () =
  let s = single ~data_len:4 ~check_lo:3 ~check_hi:3 ~md:3 () in
  Alcotest.(check string) "minimal(len_c) over one point"
    (Key.canonical (D.Fixed s))
    (Key.canonical (D.Min_check_len s));
  let interval = single ~data_len:4 ~check_lo:1 ~check_hi:8 ~md:3 () in
  Alcotest.(check bool) "real interval stays a walk" false
    (Key.canonical (D.Fixed interval)
    = Key.canonical (D.Min_check_len interval))

let test_out_of_band_inputs () =
  let t = D.Fixed (single ~data_len:4 ~check_lo:3 ~check_hi:3 ~md:3 ()) in
  let base = Key.canonical t in
  Alcotest.(check bool) "weights change the key" false
    (base = Key.canonical ~weights:[| 1; 2; 3; 4 |] t);
  Alcotest.(check bool) "channel p changes the key" false
    (base = Key.canonical ~p:0.1 t);
  Alcotest.(check bool) "distinct p distinct keys" false
    (Key.canonical ~p:0.1 t = Key.canonical ~p:0.2 t)

(* ---------- qcheck: keys collide exactly on semantic identity ---------- *)

(* The test's independent normal form: what [Key.canonical] promises to
   quotient by — fixed-bit order/duplicates and the one-point-walk alias —
   and nothing else. *)
let norm (task, weights, p) =
  let norm_single (s : D.single) =
    { s with D.fixed_bits = List.sort_uniq compare s.D.fixed_bits }
  in
  let t =
    match task with
    | D.Fixed s -> D.Fixed (norm_single s)
    | D.Min_check_len s when s.D.check_lo = s.D.check_hi ->
        D.Fixed (norm_single s)
    | D.Min_check_len s -> D.Min_check_len (norm_single s)
    | D.Min_set_bits (s, b) -> D.Min_set_bits (norm_single s, b)
    | D.Max_distance s -> D.Max_distance (norm_single s)
    | D.Weighted_mapping _ -> task
  in
  (t, Option.map Array.to_list weights, p)

let canonical_of (task, weights, p) = Key.canonical ?weights ?p task

let gen_task =
  QCheck.Gen.(
    let gen_single =
      int_range 1 16 >>= fun data_len ->
      int_range 1 12 >>= fun check_lo ->
      int_range 0 4 >>= fun span ->
      int_range 1 8 >>= fun md ->
      opt (int_range 1 24) >>= fun len1_max ->
      list_size (int_range 0 4)
        (triple (int_range 0 15) (int_range 0 27) bool)
      >>= fun fixed_bits ->
      return
        (single ~fixed_bits ?len1_max ~data_len ~check_lo
           ~check_hi:(check_lo + span) ~md ())
    in
    gen_single >>= fun s ->
    oneof
      [
        return (D.Fixed s);
        return (D.Min_check_len s);
        (int_range 1 32 >>= fun b -> return (D.Min_set_bits (s, b)));
        return (D.Max_distance s);
      ]
    >>= fun task ->
    opt (array_size (int_range 1 4) (int_range 0 9)) >>= fun weights ->
    opt (oneofl [ 0.001; 0.01; 0.1; 0.25; 0.5 ]) >>= fun p ->
    return (task, weights, p))

(* Half the pairs are independent draws (the no-collision direction), half
   are semantic aliases of one draw (the must-collide direction): the same
   task with shuffled/duplicated fixed bits, or the one-point walk spelled
   as either constructor. *)
let gen_pair =
  QCheck.Gen.(
    gen_task >>= fun a ->
    bool >>= fun alias ->
    if not alias then gen_task >>= fun b -> return (a, b)
    else
      let task, weights, p = a in
      let respell s =
        shuffle_l s.D.fixed_bits >>= fun shuffled ->
        bool >>= fun dup ->
        let fb =
          if dup && shuffled <> [] then List.hd shuffled :: shuffled
          else shuffled
        in
        return { s with D.fixed_bits = fb }
      in
      (match task with
      | D.Fixed s when s.D.check_lo = s.D.check_hi ->
          respell s >>= fun s ->
          oneofl [ D.Fixed s; D.Min_check_len s ]
      | D.Fixed s -> respell s >>= fun s -> return (D.Fixed s)
      | D.Min_check_len s when s.D.check_lo = s.D.check_hi ->
          respell s >>= fun s ->
          oneofl [ D.Fixed s; D.Min_check_len s ]
      | D.Min_check_len s -> respell s >>= fun s -> return (D.Min_check_len s)
      | D.Min_set_bits (s, b) ->
          respell s >>= fun s -> return (D.Min_set_bits (s, b))
      | D.Max_distance s -> respell s >>= fun s -> return (D.Max_distance s)
      | D.Weighted_mapping _ -> return task)
      >>= fun task -> return (a, (task, weights, p)))

let arb_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "%s  |  %s" (canonical_of a) (canonical_of b))
    gen_pair

let qcheck_no_collision =
  QCheck.Test.make
    ~name:"canonical keys collide exactly on semantically identical specs"
    ~count:10_000 arb_pair (fun (a, b) ->
      (canonical_of a = canonical_of b) = (norm a = norm b))

(* ---------- cache entries ---------- *)

let tmpdir () =
  let d = Filename.temp_file "fecsynth-session" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let hamming74 = "1000101\n0100011\n0010110\n0001111"

let entry ~key ?(md = 3) () =
  {
    Cache.key;
    created = "2026-08-08T00:00:00Z";
    code = Hamming.Code.of_string hamming74;
    check_len = 3;
    md;
    verified_md = 3;
    iterations = 11;
    elapsed = 0.5;
  }

let task74 = D.Fixed (single ~data_len:4 ~check_lo:3 ~check_hi:3 ~md:3 ())

let test_roundtrip_bit_identical () =
  let dir = tmpdir () in
  let key, digest = Key.of_task task74 in
  let e = entry ~key () in
  Cache.store ~dir ~digest e;
  match Cache.lookup ~dir ~digest ~key with
  | None -> Alcotest.fail "stored entry did not hit"
  | Some got ->
      Alcotest.(check string) "generator bit-identical" hamming74
        (Hamming.Code.to_string got.Cache.code);
      Alcotest.(check string) "key preserved" key got.Cache.key;
      Alcotest.(check int) "iterations" 11 got.Cache.iterations;
      Alcotest.(check (float 1e-9)) "elapsed" 0.5 got.Cache.elapsed;
      Alcotest.(check int) "md" 3 got.Cache.md

let test_collision_guard () =
  let dir = tmpdir () in
  let key, digest = Key.of_task task74 in
  Cache.store ~dir ~digest (entry ~key ());
  (* same digest file, different canonical key: must be a miss, never a
     wrong answer *)
  Alcotest.(check bool) "foreign key misses" true
    (Cache.lookup ~dir ~digest ~key:(key ^ " p=0x1p-1") = None)

let test_corrupt_entry_recovered () =
  let dir = tmpdir () in
  let key, digest = Key.of_task task74 in
  Cache.store ~dir ~digest (entry ~key ());
  let path = Filename.concat dir (digest ^ ".entry") in
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let flip = Bytes.of_string raw in
  (* flip one payload bit without touching the CRC trailer *)
  let i = String.length raw / 2 in
  Bytes.set flip i (Char.chr (Char.code (Bytes.get flip i) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc flip;
  close_out oc;
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Cache.lookup ~dir ~digest ~key = None);
  (* the recompute path: a fresh store overwrites the corpse and hits *)
  Cache.store ~dir ~digest (entry ~key ());
  Alcotest.(check bool) "recomputed entry hits" true
    (Cache.lookup ~dir ~digest ~key <> None)

let test_truncated_entry_is_miss () =
  let dir = tmpdir () in
  let key, digest = Key.of_task task74 in
  Cache.store ~dir ~digest (entry ~key ());
  let path = Filename.concat dir (digest ^ ".entry") in
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub raw 0 (String.length raw / 2));
  close_out oc;
  Alcotest.(check bool) "truncated entry is a miss" true
    (Cache.lookup ~dir ~digest ~key = None)

let test_stale_certificate_rejected () =
  let dir = tmpdir () in
  (* claim md 4 for a code whose true minimum distance is 3: the CRC is
     fine but the hit-side re-verification must refuse to serve it *)
  let task = D.Fixed (single ~data_len:4 ~check_lo:3 ~check_hi:3 ~md:4 ()) in
  let key, digest = Key.of_task task in
  Cache.store ~dir ~digest (entry ~key ~md:4 ());
  Alcotest.(check bool) "overclaimed distance is a miss" true
    (Cache.lookup ~dir ~digest ~key = None)

let test_missing_dir_misses () =
  let key, digest = Key.of_task task74 in
  Alcotest.(check bool) "no cache dir is a miss" true
    (Cache.lookup ~dir:"/nonexistent/fecsynth-cache" ~digest ~key = None)

(* ---------- warm-start pools ---------- *)

let test_warm_start_pools () =
  let dir = tmpdir () in
  let cex_data =
    Synth.Cegis.Cex_data (Gf2.Bitvec.init 4 (fun i -> i mod 2 = 0))
  in
  let cex_cand =
    Synth.Cegis.Cex_candidate (Hamming.Code.of_string hamming74)
  in
  Cache.save_pool ~dir ~digest:"aa" ~data_len:4 ~check_len:3 ~md:3
    [ cex_data; cex_cand ];
  Cache.save_pool ~dir ~digest:"bb" ~data_len:5 ~check_len:4 ~md:3
    [ cex_data ];
  Alcotest.(check int) "matching pool replayed" 2
    (List.length (Cache.warm_start ~dir ~data_len:4 ~md:3));
  Alcotest.(check int) "mismatched dimensions filtered" 0
    (List.length (Cache.warm_start ~dir ~data_len:6 ~md:3));
  (* a corrupt pool is skipped, not fatal *)
  let oc = open_out_bin (Filename.concat dir "aa.pool") in
  output_string oc "not a checkpoint";
  close_out oc;
  Alcotest.(check int) "corrupt pool skipped" 0
    (List.length (Cache.warm_start ~dir ~data_len:4 ~md:3))

let () =
  Alcotest.run "session"
    [
      ( "key",
        [
          Alcotest.test_case "fixed-bit order and duplicates" `Quick
            test_fixed_bits_order;
          Alcotest.test_case "one-point walk aliases fixed" `Quick
            test_one_point_walk_is_fixed;
          Alcotest.test_case "weights and p are part of the key" `Quick
            test_out_of_band_inputs;
          qtest qcheck_no_collision;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit is bit-identical" `Quick
            test_roundtrip_bit_identical;
          Alcotest.test_case "digest collision degrades to miss" `Quick
            test_collision_guard;
          Alcotest.test_case "corrupt entry rejected then recomputed" `Quick
            test_corrupt_entry_recovered;
          Alcotest.test_case "truncated entry is a miss" `Quick
            test_truncated_entry_is_miss;
          Alcotest.test_case "stale certificate rejected" `Quick
            test_stale_certificate_rejected;
          Alcotest.test_case "missing directory is a miss" `Quick
            test_missing_dir_misses;
        ] );
      ( "pools",
        [
          Alcotest.test_case "warm starts filter on problem shape" `Quick
            test_warm_start_pools;
        ] );
    ]
