(* Resilience tests: fault-injection plumbing, worker supervision,
   anytime (Partial) results at budget edges, and checkpoint/resume.

   The headline property: deterministic injected faults — solver crashes,
   spurious interrupts, worker-startup failures — never change the final
   answer of a portfolio synthesis, only its statistics.  Twenty seeded
   trial runs of the md-4 instance check exactly that. *)

module Fault = Synth.Fault
module Supervisor = Synth.Supervisor
module Checkpoint = Synth.Checkpoint
module Cegis = Synth.Cegis
module Portfolio = Synth.Portfolio
module Report = Synth.Report

let with_fault_spec text f =
  match Fault.parse text with
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" text msg
  | Ok spec ->
      Fun.protect
        ~finally:(fun () -> Fault.set_spec None)
        (fun () ->
          Fault.set_spec (Some spec);
          f ())

let md3_problem =
  { Cegis.data_len = 4; check_len = 3; min_distance = 3; extra = [] }

let md4_problem =
  { Cegis.data_len = 4; check_len = 4; min_distance = 4; extra = [] }

(* ---------------------------------------------------------------- *)
(* fault spec parsing and determinism                                *)
(* ---------------------------------------------------------------- *)

let test_fault_spec_parse () =
  match Fault.parse "seed=42,stall_ms=1.5,sat.solve.crash=0.02,worker.start.crash=1.0:max=1" with
  | Error msg -> Alcotest.fail msg
  | Ok spec ->
      Alcotest.(check int) "seed" 42 spec.Fault.seed;
      Alcotest.(check (float 1e-9)) "stall_s" 0.0015 spec.Fault.stall_s;
      (match spec.Fault.directives with
      | [ d1; d2 ] ->
          Alcotest.(check string) "site 1" "sat.solve" d1.Fault.site;
          Alcotest.(check (float 1e-9)) "prob 1" 0.02 d1.Fault.probability;
          Alcotest.(check string) "site 2" "worker.start" d2.Fault.site;
          Alcotest.(check (option int)) "max 2" (Some 1) d2.Fault.max_injections
      | ds -> Alcotest.failf "expected 2 directives, got %d" (List.length ds))

let test_fault_spec_rejects_garbage () =
  let bad = [ "sat.solve.explode=0.1"; "sat.solve.crash=1.5"; "nonsense";
              "seed=abc"; "sat.solve.crash=0.1:max=no" ] in
  List.iter
    (fun text ->
      match Fault.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S should have been rejected" text)
    bad

let crash_pattern text n =
  (* which of n probes of sat.solve inject, as a boolean list *)
  with_fault_spec text (fun () ->
      List.init n (fun _ ->
          match Fault.probe "sat.solve" with
          | () -> false
          | exception Fault.Injected _ -> true))

let test_fault_injection_deterministic () =
  let text = "seed=7,sat.solve.crash=0.3" in
  let a = crash_pattern text 200 in
  let b = crash_pattern text 200 in
  Alcotest.(check (list bool)) "same seed, same injections" a b;
  let c = crash_pattern "seed=8,sat.solve.crash=0.3" 200 in
  if a = c then Alcotest.fail "different seeds should give different patterns";
  if not (List.mem true a) then Alcotest.fail "p=0.3 should inject sometimes";
  if not (List.mem false a) then Alcotest.fail "p=0.3 should also not inject"

let test_fault_max_cap () =
  with_fault_spec "seed=1,sat.solve.crash=1.0:max=2" (fun () ->
      let crashes = ref 0 in
      for _ = 1 to 10 do
        try Fault.probe "sat.solve"
        with Fault.Injected _ -> incr crashes
      done;
      Alcotest.(check int) "capped at max" 2 !crashes;
      Alcotest.(check int) "injection_count agrees" 2 (Fault.injection_count ()))

(* ---------------------------------------------------------------- *)
(* supervisor                                                        *)
(* ---------------------------------------------------------------- *)

let fast_policy =
  { Supervisor.default_policy with
    Supervisor.backoff_base = 1e-4; backoff_max = 1e-3 }

let test_supervisor_restarts_through_crashes () =
  let r =
    Supervisor.run ~policy:fast_policy ~label:"t" (fun ~attempt ->
        if attempt < 2 then failwith "boom" else attempt)
  in
  (match r.Supervisor.result with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "expected attempt 2, got %d" n
  | Error e -> Alcotest.failf "expected success, got %s" (Printexc.to_string e));
  Alcotest.(check int) "crashes" 2 r.Supervisor.crashes;
  Alcotest.(check int) "restarts" 2 r.Supervisor.restarts

let test_supervisor_gives_up () =
  let r =
    Supervisor.run ~policy:fast_policy ~label:"t" (fun ~attempt:_ ->
        failwith "always")
  in
  (match r.Supervisor.result with
  | Error (Failure _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected the last Failure back");
  Alcotest.(check int) "crashes" 4 r.Supervisor.crashes;
  Alcotest.(check int) "restarts" 3 r.Supervisor.restarts

let test_supervisor_cancellation_passes_through () =
  match
    Supervisor.run ~policy:fast_policy (fun ~attempt:_ ->
        raise Smtlite.Ctx.Timeout)
  with
  | _ -> Alcotest.fail "cancellation must not be captured"
  | exception Smtlite.Ctx.Timeout -> ()

(* ---------------------------------------------------------------- *)
(* checkpoint format                                                 *)
(* ---------------------------------------------------------------- *)

let temp_path () = Filename.temp_file "fec-ck" ".dat"

let sample_code = Lazy.force Hamming.Catalog.fig2_7_4

let sample_t =
  {
    Checkpoint.data_len = 4;
    check_len = 3;
    min_distance = 3;
    iterations = 17;
    opt_bound = Some 3;
    best = Some (sample_code, 2);
    cexes =
      [
        Cegis.Cex_data (Gf2.Bitvec.of_string "1010");
        Cegis.Cex_candidate sample_code;
        Cegis.Cex_data (Gf2.Bitvec.of_string "0111");
      ];
  }

let test_checkpoint_roundtrip () =
  let path = temp_path () in
  Checkpoint.save ~path sample_t;
  match Checkpoint.load ~path with
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
  | Ok t ->
      Sys.remove path;
      Alcotest.(check int) "data_len" 4 t.Checkpoint.data_len;
      Alcotest.(check int) "check_len" 3 t.Checkpoint.check_len;
      Alcotest.(check int) "min_distance" 3 t.Checkpoint.min_distance;
      Alcotest.(check int) "iterations" 17 t.Checkpoint.iterations;
      Alcotest.(check (option int)) "bound" (Some 3) t.Checkpoint.opt_bound;
      (match t.Checkpoint.best with
      | Some (code, 2) when Hamming.Code.equal code sample_code -> ()
      | _ -> Alcotest.fail "best not restored");
      (match t.Checkpoint.cexes with
      | [ Cegis.Cex_data a; Cegis.Cex_candidate c; Cegis.Cex_data b ] ->
          Alcotest.(check string) "cex 1" "1010" (Gf2.Bitvec.to_string a);
          Alcotest.(check string) "cex 3" "0111" (Gf2.Bitvec.to_string b);
          Alcotest.(check bool) "cex 2" true (Hamming.Code.equal c sample_code)
      | _ -> Alcotest.fail "cex pool not restored in order")

let test_checkpoint_detects_corruption () =
  let path = temp_path () in
  Checkpoint.save ~path sample_t;
  (* flip one byte in the middle of the file *)
  let text = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string text in
  let i = Bytes.length b / 2 in
  Bytes.set b i (if Bytes.get b i = '1' then '0' else '1');
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  (match Checkpoint.load ~path with
  | Error (Checkpoint.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "bit flip must be detected"
  | Error e -> Alcotest.failf "expected Corrupt, got %s" (Checkpoint.error_to_string e));
  Sys.remove path

let test_checkpoint_detects_truncation () =
  let path = temp_path () in
  Checkpoint.save ~path sample_t;
  let text = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub text 0 (String.length text / 2)));
  (match Checkpoint.load ~path with
  | Error (Checkpoint.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "truncation must be detected"
  | Error e -> Alcotest.failf "expected Corrupt, got %s" (Checkpoint.error_to_string e));
  Sys.remove path

(* write body lines with a correct CRC trailer, as save does *)
let write_raw path lines =
  let body = String.concat "\n" lines ^ "\n" in
  let crc = Zip.Crc32.digest body in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (body ^ Printf.sprintf "crc %08lX\n" crc))

let test_checkpoint_rejects_future_version () =
  let path = temp_path () in
  write_raw path [ "fecsynth-checkpoint 99"; "problem 4 3 3"; "end" ];
  (match Checkpoint.load ~path with
  | Error (Checkpoint.Version_mismatch 99) -> ()
  | Ok _ -> Alcotest.fail "future version must be rejected"
  | Error e ->
      Alcotest.failf "expected Version_mismatch, got %s"
        (Checkpoint.error_to_string e));
  Sys.remove path

let test_checkpoint_rejects_misfit_witness () =
  let path = temp_path () in
  (* valid CRC, but the witness is longer than the declared data_len *)
  write_raw path
    [ "fecsynth-checkpoint 1"; "problem 4 3 3"; "cex d 10100"; "end" ];
  (match Checkpoint.load ~path with
  | Error (Checkpoint.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "misfit witness must be rejected"
  | Error e -> Alcotest.failf "expected Corrupt, got %s" (Checkpoint.error_to_string e));
  Sys.remove path

let test_checkpoint_matches_problem () =
  Alcotest.(check bool) "same problem" true
    (Checkpoint.matches_problem sample_t md3_problem);
  Alcotest.(check bool) "different problem" false
    (Checkpoint.matches_problem sample_t md4_problem)

let test_checkpoint_writer_accumulates () =
  let path = temp_path () in
  let w =
    Checkpoint.Writer.create ~min_interval:0.0 ~path ~data_len:4 ~check_len:3
      ~min_distance:3 ()
  in
  Checkpoint.Writer.record_cex w (Cegis.Cex_data (Gf2.Bitvec.of_string "1100"));
  Checkpoint.Writer.record_cex w (Cegis.Cex_data (Gf2.Bitvec.of_string "0011"));
  Checkpoint.Writer.record_best w sample_code 2;
  Checkpoint.Writer.record_best w sample_code 1 (* worse: must be ignored *);
  Checkpoint.Writer.record_bound w 3;
  Checkpoint.Writer.record_iterations w 9;
  Checkpoint.Writer.flush w;
  (match Checkpoint.load ~path with
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
  | Ok t ->
      Alcotest.(check int) "cex count" 2 (List.length t.Checkpoint.cexes);
      Alcotest.(check int) "iterations" 9 t.Checkpoint.iterations;
      Alcotest.(check (option int)) "bound" (Some 3) t.Checkpoint.opt_bound;
      (match t.Checkpoint.best with
      | Some (_, 2) -> ()
      | _ -> Alcotest.fail "best must keep the higher bound"));
  Sys.remove path

(* ---------------------------------------------------------------- *)
(* budget edge cases: anytime results, no exceptions                 *)
(* ---------------------------------------------------------------- *)

let test_zero_timeout_returns_cleanly () =
  match Cegis.synthesize ~timeout:0.0 md3_problem with
  | Report.Timed_out _ -> ()
  | Report.Partial _ -> ()
  | Report.Synthesized _ -> Alcotest.fail "no time budget, yet synthesized?"
  | Report.Unsat_config _ -> Alcotest.fail "no time budget, yet refuted?"

let test_negative_timeout_returns_cleanly () =
  match Cegis.synthesize ~timeout:(-5.0) md3_problem with
  | Report.Timed_out _ | Report.Partial _ -> ()
  | _ -> Alcotest.fail "deadline in the past must yield Timed_out/Partial"

let test_immediate_interrupt_returns_cleanly () =
  match Cegis.synthesize ~interrupt:(fun () -> true) md3_problem with
  | Report.Timed_out _ | Report.Partial _ -> ()
  | _ -> Alcotest.fail "immediate interrupt must yield Timed_out/Partial"

let test_interrupt_after_first_cex_is_partial () =
  (* the flag flips inside on_progress, i.e. between the verification call
     that refuted the candidate and the next synthesis solver call *)
  let stop = ref false in
  match
    Cegis.synthesize
      ~interrupt:(fun () -> !stop)
      ~on_progress:(fun _ _ -> stop := true)
      md3_problem
  with
  | Report.Partial (code, _) ->
      (* an anytime candidate is a real generator, just not at target md *)
      Alcotest.(check int) "data_len" 4 (Hamming.Code.data_len code);
      Alcotest.(check int) "check_len" 3 (Hamming.Code.check_len code)
  | Report.Synthesized _ ->
      Alcotest.fail "interrupt after the first refutation must not decide"
  | _ -> Alcotest.fail "a refuted candidate exists: outcome must be Partial"

let test_interrupt_at_any_poll_boundary () =
  (* fire the genuine interrupt at the N-th poll for several small N: the
     abort lands at arbitrary points inside/between solver calls and must
     always come back as a clean outcome, never an exception.  The md-4
     instance needs at least two iterations (the unconstrained first
     candidate cannot reach distance 4), so tiny poll budgets can never
     reach a decision. *)
  List.iter
    (fun n ->
      let polls = ref 0 in
      let interrupt () =
        incr polls;
        !polls >= n
      in
      match Cegis.synthesize ~interrupt md4_problem with
      | outcome -> (
          match (outcome, n <= 3) with
          | (Report.Timed_out _ | Report.Partial _), _ -> ()
          | _, false -> () (* larger budgets may legitimately decide *)
          | _, true ->
              Alcotest.failf "poll budget %d should not reach a decision" n)
      | exception e ->
          Alcotest.failf "poll budget %d leaked %s" n (Printexc.to_string e))
    [ 1; 2; 3; 5; 8; 13 ]

let test_optimize_zero_timeout_returns_cleanly () =
  match
    Synth.Optimize.minimize_check_len ~timeout:0.0 ~data_len:4 ~md:3
      ~check_lo:2 ~check_hi:5 ()
  with
  | Synth.Report.Timed_out _ | Synth.Report.Partial _ -> ()
  | _ -> Alcotest.fail "zero budget walk must yield Timed_out/Partial"

let test_portfolio_immediate_interrupt () =
  match
    Portfolio.synthesize ~jobs:3 ~scheduler:`Interleaved
      ~interrupt:(fun () -> true)
      md3_problem
  with
  | Report.Timed_out _ | Report.Partial _ -> ()
  | _ -> Alcotest.fail "interrupted race must yield Timed_out/Partial"

(* ---------------------------------------------------------------- *)
(* resume warm start                                                 *)
(* ---------------------------------------------------------------- *)

let test_resume_uses_fewer_iterations () =
  let pool = ref [] in
  let cold =
    Cegis.synthesize ~on_progress:(fun _ cex -> pool := cex :: !pool)
      md4_problem
  in
  let cold_iters =
    match cold with
    | Report.Synthesized (_, stats) -> stats.Report.Stats.iterations
    | _ -> Alcotest.fail "md-4 instance must synthesize cold"
  in
  if cold_iters < 2 then
    Alcotest.fail "instance too easy to demonstrate a warm start";
  match Cegis.synthesize ~initial:(List.rev !pool) md4_problem with
  | Report.Synthesized (_, stats) ->
      if stats.Report.Stats.iterations >= cold_iters then
        Alcotest.failf "resumed run used %d iterations, cold used %d"
          stats.Report.Stats.iterations cold_iters
  | _ -> Alcotest.fail "resumed run must still synthesize"

(* ---------------------------------------------------------------- *)
(* portfolio under injected faults                                   *)
(* ---------------------------------------------------------------- *)

let check_md4 code =
  Alcotest.(check bool) "generator meets md 4" true
    (Hamming.Distance.min_distance code >= 4)

let test_worker_crash_still_decides () =
  (* the first worker start is killed outright; supervision restarts it and
     the race still decides *)
  with_fault_spec "seed=5,worker.start.crash=1.0:max=1" (fun () ->
      match
        Portfolio.synthesize ~jobs:3 ~scheduler:`Interleaved md3_problem
      with
      | Report.Synthesized (code, report) ->
          Alcotest.(check bool) "generator meets md 3" true
            (Hamming.Distance.min_distance code >= 3);
          if report.Portfolio.totals.Report.Stats.worker_crashes < 1 then
            Alcotest.fail "the injected crash must be counted"
      | _ -> Alcotest.fail "portfolio with one crashed worker must decide")

let test_spurious_interrupts_are_retried () =
  (* injected interrupts that no one requested: the sequential loop
     re-checks the genuine condition and retries the step *)
  with_fault_spec "seed=3,ctx.check.interrupt=0.2:max=5" (fun () ->
      match Cegis.synthesize md3_problem with
      | Report.Synthesized (code, _) ->
          Alcotest.(check bool) "generator meets md 3" true
            (Hamming.Distance.min_distance code >= 3)
      | _ -> Alcotest.fail "spurious interrupts must not change the answer")

let test_fault_trials_never_change_answer () =
  (* acceptance: 20 seeded fault-injection trials of the md-4 portfolio,
     every one must reach the same decision as the fault-free run with a
     generator that verifies *)
  (match Portfolio.synthesize ~jobs:3 ~scheduler:`Interleaved md4_problem with
  | Report.Synthesized (code, _) -> check_md4 code
  | _ -> Alcotest.fail "fault-free baseline must synthesize");
  for seed = 1 to 20 do
    let spec =
      Printf.sprintf
        "seed=%d,sat.solve.crash=0.03:max=2,worker.start.crash=0.5:max=1,ctx.check.interrupt=0.05:max=3"
        seed
    in
    with_fault_spec spec (fun () ->
        match
          Portfolio.synthesize ~jobs:3 ~scheduler:`Interleaved md4_problem
        with
        | Report.Synthesized (code, _) -> check_md4 code
        | _ -> Alcotest.failf "trial seed=%d changed the decision" seed)
  done

let () =
  Alcotest.run "resilience"
    [
      ( "fault-spec",
        [
          Alcotest.test_case "parse" `Quick test_fault_spec_parse;
          Alcotest.test_case "rejects garbage" `Quick
            test_fault_spec_rejects_garbage;
          Alcotest.test_case "deterministic per seed" `Quick
            test_fault_injection_deterministic;
          Alcotest.test_case "max cap" `Quick test_fault_max_cap;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "restarts through crashes" `Quick
            test_supervisor_restarts_through_crashes;
          Alcotest.test_case "gives up after max restarts" `Quick
            test_supervisor_gives_up;
          Alcotest.test_case "cancellation passes through" `Quick
            test_supervisor_cancellation_passes_through;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "detects corruption" `Quick
            test_checkpoint_detects_corruption;
          Alcotest.test_case "detects truncation" `Quick
            test_checkpoint_detects_truncation;
          Alcotest.test_case "rejects future version" `Quick
            test_checkpoint_rejects_future_version;
          Alcotest.test_case "rejects misfit witness" `Quick
            test_checkpoint_rejects_misfit_witness;
          Alcotest.test_case "matches_problem" `Quick
            test_checkpoint_matches_problem;
          Alcotest.test_case "writer accumulates" `Quick
            test_checkpoint_writer_accumulates;
        ] );
      ( "budget-edges",
        [
          Alcotest.test_case "zero timeout" `Quick
            test_zero_timeout_returns_cleanly;
          Alcotest.test_case "negative timeout" `Quick
            test_negative_timeout_returns_cleanly;
          Alcotest.test_case "immediate interrupt" `Quick
            test_immediate_interrupt_returns_cleanly;
          Alcotest.test_case "interrupt between solver calls is Partial"
            `Quick test_interrupt_after_first_cex_is_partial;
          Alcotest.test_case "interrupt at any poll boundary" `Quick
            test_interrupt_at_any_poll_boundary;
          Alcotest.test_case "optimize zero timeout" `Quick
            test_optimize_zero_timeout_returns_cleanly;
          Alcotest.test_case "portfolio immediate interrupt" `Quick
            test_portfolio_immediate_interrupt;
        ] );
      ( "resume",
        [
          Alcotest.test_case "warm start uses fewer iterations" `Quick
            test_resume_uses_fewer_iterations;
        ] );
      ( "fault-trials",
        [
          Alcotest.test_case "worker crash still decides" `Quick
            test_worker_crash_still_decides;
          Alcotest.test_case "spurious interrupts retried" `Quick
            test_spurious_interrupts_are_retried;
          Alcotest.test_case "20 seeded trials, same answer" `Slow
            test_fault_trials_never_change_answer;
        ] );
    ]
