(* Durability and analytics tests for the run ledger (Telemetry.Ledger),
   the dashboard (Telemetry.Html) and the build-identity record
   (Telemetry.Buildinfo): round-trips for every outcome variant,
   truncated-tail tolerance, future-version rejection, concurrent append
   leaving only whole records, nearest-rank quantiles, trend verdicts,
   and HTML well-formedness. *)

module L = Telemetry.Ledger
module J = Telemetry.Json

let build =
  {
    Telemetry.Buildinfo.code_version = "1.0.0";
    git = Some "abc1234-dirty";
    ocaml = "5.1.1";
    features = [ "ledger"; "telemetry" ];
  }

let entry ?(ts = "2026-08-07T00:00:00Z") ?(cmd = "synth")
    ?(problem = "md(G[0]) = 3") ?(outcome = "synthesized") ?(exit_code = 0)
    ?(wall = 0.25) ?(config = [ ("timeout", "120.") ])
    ?(metrics = [ ("wall_s", 0.25); ("stats.iterations", 7.0) ])
    ?(cache_hit = false) ?stats () =
  {
    L.version = L.format_version;
    ts;
    subcommand = cmd;
    problem;
    outcome;
    exit_code;
    cache_hit;
    wall_s = wall;
    build;
    config;
    metrics;
    stats;
  }

let roundtrip e =
  match L.of_json (J.of_string (L.render e)) with
  | Ok e' -> e'
  | Error (`Malformed m) -> Alcotest.failf "malformed round-trip: %s" m
  | Error (`Future v) -> Alcotest.failf "future round-trip: v%d" v

(* every outcome the CLI can record, failures included *)
let all_outcomes =
  [
    ("synthesized", 0); ("unsat", 3); ("timeout", 4); ("partial", 5);
    ("interrupted", 130); ("verified", 0); ("refuted", 1); ("certified", 0);
    ("ok", 0); ("error", 2); ("crash", 2);
  ]

let test_roundtrip () =
  List.iter
    (fun (outcome, exit_code) ->
      let e =
        entry ~outcome ~exit_code
          ~stats:(J.Obj [ ("iterations", J.Int 7) ])
          ()
      in
      let e' = roundtrip e in
      Alcotest.(check string) "outcome" outcome e'.L.outcome;
      Alcotest.(check int) "exit" exit_code e'.L.exit_code;
      Alcotest.(check string) "ts" e.L.ts e'.L.ts;
      Alcotest.(check string) "cmd" e.L.subcommand e'.L.subcommand;
      Alcotest.(check string) "problem" e.L.problem e'.L.problem;
      Alcotest.(check (list (pair string string))) "config" e.L.config
        e'.L.config;
      Alcotest.(check (list (pair string (float 1e-9)))) "metrics" e.L.metrics
        e'.L.metrics;
      Alcotest.(check bool) "stats kept" true (e'.L.stats <> None);
      Alcotest.(check string) "build git" "abc1234-dirty"
        (Option.get e'.L.build.Telemetry.Buildinfo.git))
    all_outcomes

(* problem strings carrying every character the HTML and JSON layers must
   escape survive the trip *)
let test_roundtrip_hostile_strings () =
  let problem = {|md(G[0]) >= 3 && "x" < 'y' & <tag> \ |} ^ "\t\n" in
  let e' = roundtrip (entry ~problem ()) in
  Alcotest.(check string) "hostile problem" problem e'.L.problem

let test_truncated_tail () =
  let whole = L.render (entry ()) ^ "\n" in
  let torn = whole ^ String.sub whole 0 (String.length whole / 2) in
  match L.of_string torn with
  | Error m -> Alcotest.failf "torn tail rejected: %s" m
  | Ok l ->
      Alcotest.(check int) "whole records" 1 (List.length l.L.entries);
      Alcotest.(check bool) "flagged" true l.L.truncated

let test_midfile_garbage_rejected () =
  let whole = L.render (entry ()) ^ "\n" in
  match L.of_string (whole ^ "{broken\n" ^ whole) with
  | Error m ->
      Alcotest.(check bool) "names the line" true
        (String.length m > 0 && String.sub m 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "mid-file corruption must be an error"

let test_future_version_skipped () =
  let future =
    {|{"v":99,"ts":"2030-01-01T00:00:00Z","cmd":"synth","outcome":"alien"}|}
  in
  let whole = L.render (entry ()) ^ "\n" in
  match L.of_string (whole ^ future ^ "\n" ^ whole) with
  | Error m -> Alcotest.failf "future record broke the reader: %s" m
  | Ok l ->
      Alcotest.(check int) "readable records" 2 (List.length l.L.entries);
      Alcotest.(check int) "skipped" 1 l.L.skipped_future;
      Alcotest.(check bool) "not truncated" false l.L.truncated

let test_missing_file_is_empty () =
  match L.load ~dir:"/nonexistent-fecsynth-test-dir" with
  | Ok l ->
      Alcotest.(check int) "no entries" 0 (List.length l.L.entries)
  | Error m -> Alcotest.failf "missing ledger must read as empty: %s" m

(* two processes appending concurrently must interleave whole records,
   never bytes: the single-O_APPEND-write discipline *)
let test_concurrent_append () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fec-ledger-test-%d" (Unix.getpid ()))
  in
  let per_child = 50 in
  let spawn tag =
    match Unix.fork () with
    | 0 ->
        for i = 1 to per_child do
          L.append ~dir
            (entry
               ~problem:(Printf.sprintf "%s-%d" tag i)
               ~metrics:[ ("wall_s", float_of_int i) ]
               ())
        done;
        Unix._exit 0
    | pid -> pid
  in
  let pids = [ spawn "a"; spawn "b" ] in
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  (match L.load ~dir with
  | Error m -> Alcotest.failf "concurrent ledger corrupt: %s" m
  | Ok l ->
      Alcotest.(check int) "all records whole" (2 * per_child)
        (List.length l.L.entries);
      Alcotest.(check bool) "no torn tail" false l.L.truncated;
      let count tag =
        List.length
          (List.filter
             (fun e ->
               String.length e.L.problem > 2 && String.sub e.L.problem 0 2
               = tag ^ "-")
             l.L.entries)
      in
      Alcotest.(check int) "a's records" per_child (count "a");
      Alcotest.(check int) "b's records" per_child (count "b"));
  Sys.remove (L.file ~dir);
  Unix.rmdir dir

let test_quantile () =
  let values = [ 5.0; 1.0; 4.0; 2.0; 3.0 ] in
  Alcotest.(check (option (float 0.0))) "p50" (Some 3.0)
    (L.quantile values 0.5);
  Alcotest.(check (option (float 0.0))) "p95" (Some 5.0)
    (L.quantile values 0.95);
  Alcotest.(check (option (float 0.0))) "p0 -> min" (Some 1.0)
    (L.quantile values 0.0);
  Alcotest.(check (option (float 0.0))) "empty" None (L.quantile [] 0.5);
  (* agrees with the metrics histogram's nearest-rank convention *)
  let h =
    List.fold_left
      (fun h v -> Telemetry.Metrics.Hist.observe h v)
      Telemetry.Metrics.Hist.zero [ 5; 1; 4; 2; 3 ]
  in
  Alcotest.(check (option int)) "hist p50" (Some 3)
    (Telemetry.Metrics.Hist.quantile h 0.5)

let series_of points =
  { L.s_cmd = "synth"; s_problem = "p"; s_metric = "wall_s"; points }

let test_trend () =
  let t =
    L.trend ~threshold:25.0
      (series_of [ ("t1", 1.0); ("t2", 1.1); ("t3", 0.9); ("t4", 2.0) ])
  in
  Alcotest.(check int) "n" 4 t.L.n;
  Alcotest.(check (float 1e-9)) "last" 2.0 t.L.last;
  (* baseline = median of {1.0, 1.1, 0.9} = 1.0; last doubled *)
  Alcotest.(check (float 1e-6)) "pct" 100.0
    (Option.get t.L.pct_vs_baseline);
  Alcotest.(check bool) "regression" true t.L.regression;
  let ok =
    L.trend ~threshold:25.0 (series_of [ ("t1", 1.0); ("t2", 1.1) ])
  in
  Alcotest.(check bool) "within threshold" false ok.L.regression;
  let single = L.trend ~threshold:25.0 (series_of [ ("t1", 1.0) ]) in
  Alcotest.(check bool) "single point is baseline" true
    (single.L.pct_vs_baseline = None && not single.L.regression);
  (* zero baseline growing = infinite regression, the Analyze.diff rule *)
  let inf =
    L.trend ~threshold:25.0 (series_of [ ("t1", 0.0); ("t2", 1.0) ])
  in
  Alcotest.(check bool) "zero baseline -> inf" true
    (Option.get inf.L.pct_vs_baseline = infinity && inf.L.regression)

let test_series () =
  let entries =
    [
      entry ~ts:"t1" ~cmd:"synth" ~problem:"A"
        ~metrics:[ ("wall_s", 1.0); ("stats.iterations", 5.0) ]
        ();
      entry ~ts:"t2" ~cmd:"synth" ~problem:"B" ~metrics:[ ("wall_s", 2.0) ] ();
      entry ~ts:"t3" ~cmd:"synth" ~problem:"A" ~metrics:[ ("wall_s", 3.0) ] ();
      entry ~ts:"t4" ~cmd:"bench" ~problem:"A" ~metrics:[ ("wall_s", 4.0) ] ();
    ]
  in
  let ss = L.series ~metric:"wall_s" entries in
  Alcotest.(check int) "per (cmd,problem,key)" 3 (List.length ss);
  let a = List.find (fun s -> s.L.s_problem = "A" && s.L.s_cmd = "synth") ss in
  Alcotest.(check (list (pair string (float 0.0)))) "oldest first"
    [ ("t1", 1.0); ("t3", 3.0) ]
    a.L.points;
  let only_bench = L.series ~subcommand:"bench" ~metric:"wall_s" entries in
  Alcotest.(check int) "subcommand filter" 1 (List.length only_bench);
  let iters = L.series ~metric:"iterations" entries in
  Alcotest.(check int) "metric substring" 1 (List.length iters)

let test_html_well_formed () =
  let entries =
    List.mapi
      (fun i (outcome, exit_code) ->
        entry
          ~ts:(Printf.sprintf "2026-08-07T00:00:%02dZ" i)
          ~outcome ~exit_code
          ~problem:{|md >= 3 && "x" < <y> & z|}
          ~metrics:
            [
              ("wall_s", 0.1 *. float_of_int (i + 1));
              ("stats.syn_conflicts", 10.0);
              ("stats.ver_conflicts", 4.0);
            ]
          ())
      all_outcomes
  in
  let html = Telemetry.Html.render entries in
  (match Telemetry.Html.well_formed html with
  | Ok () -> ()
  | Error m -> Alcotest.failf "dashboard not well-formed: %s" m);
  (* the empty ledger renders too *)
  (match Telemetry.Html.well_formed (Telemetry.Html.render []) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "empty dashboard not well-formed: %s" m)

let test_html_checker_negatives () =
  let bad = [ "<div><span></div>"; "<div>"; "</p>"; "<div><a href=\"https://x\"></a></div>" ] in
  List.iter
    (fun h ->
      match Telemetry.Html.well_formed h with
      | Ok () -> Alcotest.failf "checker accepted %S" h
      | Error _ -> ())
    bad;
  (* void elements and comments are fine *)
  match Telemetry.Html.well_formed "<div><!-- c --><meta charset=\"utf-8\"><br></div>" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "void/comment rejected: %s" m

(* the ledger's flat stats keys are a wire format: renames break
   [runs trend --metric stats.*] across releases *)
let test_stats_metrics_keys () =
  let stats =
    {
      Synth.Report.Stats.zero with
      Synth.Report.Stats.iterations = 3;
      verifier_calls = 2;
      elapsed = 0.5;
      syn_conflicts = 7;
      ver_conflicts = 1;
    }
  in
  let m = Synth.Report.Stats.to_metrics stats in
  List.iter
    (fun k ->
      Alcotest.(check bool) ("has " ^ k) true (List.mem_assoc k m))
    [
      "stats.iterations"; "stats.verifier_calls"; "stats.elapsed_s";
      "stats.syn_conflicts"; "stats.ver_conflicts"; "stats.worker_crashes";
      "stats.worker_restarts";
    ];
  Alcotest.(check (float 0.0)) "iterations value" 3.0
    (List.assoc "stats.iterations" m);
  (* empty histogram -> no quantile keys *)
  Alcotest.(check bool) "no p50 for empty hist" false
    (List.mem_assoc "stats.learnt_size_p50" m)

let test_buildinfo_lenient () =
  let b = Telemetry.Buildinfo.of_json J.Null in
  Alcotest.(check string) "version ?" "?" b.Telemetry.Buildinfo.code_version;
  Alcotest.(check bool) "no git" true (b.Telemetry.Buildinfo.git = None);
  let b' =
    Telemetry.Buildinfo.of_json
      (Telemetry.Buildinfo.to_json
         { build with Telemetry.Buildinfo.git = None })
  in
  Alcotest.(check bool) "git null round-trips" true
    (b'.Telemetry.Buildinfo.git = None)

(* ---------- crash-safe recovery: tail repair, in-flight journal ---------- *)

let tmpdir () =
  let d = Filename.temp_file "fec-ledger" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

(* past any realistic pid_max: liveness probes answer ESRCH *)
let dead_pid = 99_999_999

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let test_repair_tail () =
  let dir = tmpdir () in
  L.append ~dir (entry ());
  (* a crash mid-append leaves a torn half-record with no newline *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 (L.file ~dir) in
  output_string oc {|{"v":1,"ts":"2026-|};
  close_out oc;
  (match L.load ~dir with
  | Ok l -> Alcotest.(check bool) "torn tail detected" true l.L.truncated
  | Error m -> Alcotest.failf "load: %s" m);
  Alcotest.(check bool) "tail repaired" true (L.repair_tail ~dir);
  (match L.load ~dir with
  | Ok l ->
      Alcotest.(check bool) "clean after repair" false l.L.truncated;
      Alcotest.(check int) "whole record kept" 1 (List.length l.L.entries)
  | Error m -> Alcotest.failf "load after repair: %s" m);
  Alcotest.(check bool) "repair is idempotent" false (L.repair_tail ~dir)

let test_journal_lifecycle () =
  let dir = tmpdir () in
  let jdir = Filename.concat dir "inflight" in
  let p =
    L.start ~dir ~ts:"2026-08-08T00:00:00Z" ~subcommand:"serve"
      ~problem:"md(G[0]) = 3" ~config:[] ~build ()
  in
  Alcotest.(check int) "start writes one journal" 1
    (Array.length (Sys.readdir jdir));
  L.finish p ~outcome:"ok" ~exit_code:0;
  Alcotest.(check int) "finish removes it" 0
    (Array.length (Sys.readdir jdir))

let test_scavenge_recovers_crash () =
  let dir = tmpdir () in
  let jdir = Filename.concat dir "inflight" in
  Unix.mkdir jdir 0o755;
  let crash_line =
    L.render (entry ~cmd:"serve" ~outcome:"crash" ~exit_code:2 ()) ^ "\n"
  in
  let dead = Filename.concat jdir (Printf.sprintf "%d.0" dead_pid) in
  let live = Filename.concat jdir (Printf.sprintf "%d.0" (Unix.getpid ())) in
  let torn = Filename.concat jdir (Printf.sprintf "%d.1" dead_pid) in
  write_file dead crash_line;
  write_file live crash_line;
  (* killed mid-journal-write: unparseable, must be dropped silently *)
  write_file torn {|{"v":1,"ts|};
  let recovered, repaired = L.scavenge ~dir in
  Alcotest.(check int) "one in-flight run recovered" 1 recovered;
  Alcotest.(check bool) "no tail to repair" false repaired;
  (match L.load ~dir with
  | Ok l -> (
      Alcotest.(check int) "crash record appended" 1
        (List.length l.L.entries);
      match l.L.entries with
      | [ e ] -> Alcotest.(check string) "outcome" "crash" e.L.outcome
      | _ -> Alcotest.fail "expected exactly one entry")
  | Error m -> Alcotest.failf "load after scavenge: %s" m);
  Alcotest.(check bool) "dead journal removed" false (Sys.file_exists dead);
  Alcotest.(check bool) "torn journal removed" false (Sys.file_exists torn);
  Alcotest.(check bool) "live journal kept" true (Sys.file_exists live);
  let recovered2, _ = L.scavenge ~dir in
  Alcotest.(check int) "second scavenge finds nothing" 0 recovered2

let () =
  Alcotest.run "ledger"
    [
      ( "ledger",
        [
          Alcotest.test_case "roundtrip all outcomes" `Quick test_roundtrip;
          Alcotest.test_case "hostile strings" `Quick
            test_roundtrip_hostile_strings;
          Alcotest.test_case "truncated tail tolerated" `Quick
            test_truncated_tail;
          Alcotest.test_case "mid-file garbage rejected" `Quick
            test_midfile_garbage_rejected;
          Alcotest.test_case "future version skipped" `Quick
            test_future_version_skipped;
          Alcotest.test_case "missing file empty" `Quick
            test_missing_file_is_empty;
          Alcotest.test_case "concurrent append" `Quick test_concurrent_append;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "torn tail repaired" `Quick test_repair_tail;
          Alcotest.test_case "in-flight journal lifecycle" `Quick
            test_journal_lifecycle;
          Alcotest.test_case "scavenge turns dead journals into crash \
                              records" `Quick test_scavenge_recovers_crash;
        ] );
      ( "trend",
        [
          Alcotest.test_case "nearest-rank quantile" `Quick test_quantile;
          Alcotest.test_case "trend verdicts" `Quick test_trend;
          Alcotest.test_case "series grouping" `Quick test_series;
        ] );
      ( "html",
        [
          Alcotest.test_case "dashboard well-formed" `Quick
            test_html_well_formed;
          Alcotest.test_case "checker negatives" `Quick
            test_html_checker_negatives;
        ] );
      ( "buildinfo",
        [
          Alcotest.test_case "stats metric keys stable" `Quick
            test_stats_metrics_keys;
          Alcotest.test_case "lenient decode" `Quick test_buildinfo_lenient;
        ] );
    ]
